package text

import "strings"

// Stopwords returns the built-in stopword set for a language code
// ("en" or "zh"); nil for unsupported languages. The sets are the built-in
// resources the paper's stopwords_filter downloads from its asset drive.
func Stopwords(lang string) map[string]struct{} {
	switch lang {
	case "en":
		return englishStopwords
	case "zh":
		return chineseStopwords
	}
	return nil
}

func toSet(words string) map[string]struct{} {
	set := make(map[string]struct{})
	for _, w := range strings.Fields(words) {
		set[w] = struct{}{}
	}
	return set
}

var englishStopwords = toSet(`
a about above after again against all am an and any are aren't as at be
because been before being below between both but by can't cannot could
couldn't did didn't do does doesn't doing don't down during each few for
from further had hadn't has hasn't have haven't having he he'd he'll he's
her here here's hers herself him himself his how how's i i'd i'll i'm
i've if in into is isn't it it's its itself let's me more most mustn't my
myself no nor not of off on once only or other ought our ours ourselves
out over own same shan't she she'd she'll she's should shouldn't so some
such than that that's the their theirs them themselves then there there's
these they they'd they'll they're they've this those through to too under
until up very was wasn't we we'd we'll we're we've were weren't what
what's when when's where where's which while who who's whom why why's
with won't would wouldn't you you'd you'll you're you've your yours
yourself yourselves will just also now get got like one two much many`)

var chineseStopwords = toSet(`
的 了 和 是 在 我 有 他 这 中 大 来 上 国 个 到 说 们 为 子 要 你 就 出 会
可 也 对 生 能 而 以 于 不 之 时 地 它 她 那 得 着 下 自 与 去 过 家 学 都
年 想 作 种 开 些 么 样 啊 把 被 让 给 但 并 或 很 再 还 只 又 如 因 此 所`)

// FlaggedWords returns the built-in flagged-word set per language — the
// resource behind the flagged_words_filter. The lists here are small
// placeholder sets of toxicity/adult markers sufficient for the synthetic
// corpora, standing in for the large curated lists the paper ships.
func FlaggedWords(lang string) map[string]struct{} {
	switch lang {
	case "en":
		return englishFlagged
	case "zh":
		return chineseFlagged
	}
	return nil
}

var englishFlagged = toSet(`
damn hell crap stupid idiot hate kill die ugly loser sucks
gambling casino jackpot viagra lottery xxx porn nude sexy escort
clickbait scam fraud pyramid hoax miracle-cure free-money`)

var chineseFlagged = toSet(`赌博 色情 诈骗 垃圾 傻瓜 废物 彩票 发票`)

// VerbLexicon is a small English verb lexicon used by the text_action
// filter and the diversity analyzer (verb–noun pair extraction). The
// paper relies on a full POS tagger; for the synthetic corpora a lexicon
// lookup of common instruction verbs is sufficient.
var VerbLexicon = toSet(`
write describe explain summarize translate list give create generate
make build find identify classify compare analyze answer tell show
compute calculate solve design develop implement test review edit
rewrite improve fix convert extract rank sort choose select recommend
suggest plan outline draft compose define discuss evaluate predict
estimate prove derive simplify expand paraphrase continue complete`)

// NounLexicon is the companion object lexicon for verb–noun diversity.
var NounLexicon = toSet(`
story essay poem summary article code function program letter email
report list table plan recipe answer question sentence paragraph text
document review outline speech song headline title description
explanation argument proof equation algorithm model dataset number
word name idea example difference similarity advantage disadvantage
step instruction method approach solution problem`)

// IsVerb reports whether the lower-cased token is in the verb lexicon.
func IsVerb(w string) bool {
	_, ok := VerbLexicon[strings.ToLower(w)]
	return ok
}

// IsNoun reports whether the lower-cased token is in the noun lexicon.
func IsNoun(w string) bool {
	_, ok := NounLexicon[strings.ToLower(w)]
	return ok
}

// VerbNounPairs extracts (verb, first following noun) pairs from words,
// the structure behind the diversity pie plots in Figures 2 and 5.
func VerbNounPairs(words []string) [][2]string {
	var pairs [][2]string
	for i, w := range words {
		if !IsVerb(w) {
			continue
		}
		for j := i + 1; j < len(words) && j <= i+6; j++ {
			if IsNoun(words[j]) {
				pairs = append(pairs, [2]string{strings.ToLower(w), strings.ToLower(words[j])})
				break
			}
		}
	}
	return pairs
}
