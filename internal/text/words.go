// Package text provides the language-processing primitives that the
// operator pool builds on: word and sentence segmentation, n-grams,
// unicode repair and normalization, a character-trigram language
// identifier, and the built-in stopword and flagged-word resources.
//
// These are the stand-ins for the Python stack the paper uses (regex
// tokenizers, fasttext language ID, curated word lists); see DESIGN.md for
// the substitution notes.
package text

import (
	"strings"
	"unicode"
)

// Words segments text into word tokens. Latin-script words are maximal
// runs of letters, digits, apostrophes and hyphens; each CJK ideograph is
// its own token (Chinese has no spaces, and per-character tokens are the
// standard approximation).
func Words(s string) []string {
	words := make([]string, 0, len(s)/6+1)
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			words = append(words, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case IsCJK(r):
			flush()
			words = append(words, string(r))
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' || r == '-' || r == '_':
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return words
}

// WordsLower is Words with every token lower-cased.
func WordsLower(s string) []string {
	ws := Words(s)
	for i, w := range ws {
		ws[i] = strings.ToLower(w)
	}
	return ws
}

// Fields splits on whitespace only (raw tokens including punctuation),
// matching the "standard tokenizer" used by the quality classifier.
func Fields(s string) []string { return strings.Fields(s) }

// Lines splits text into lines without trailing newline characters.
func Lines(s string) []string {
	if s == "" {
		return nil
	}
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = strings.TrimSuffix(l, "\r")
	}
	return lines
}

// Paragraphs splits text on blank lines.
func Paragraphs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, "\n\n") {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Sentences splits text into sentences on ASCII and CJK terminal
// punctuation. Terminators are kept attached to their sentence.
func Sentences(s string) []string {
	var out []string
	var b strings.Builder
	runes := []rune(s)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		b.WriteRune(r)
		if isSentenceEnd(r) {
			// Absorb a run of closing quotes/terminators.
			for i+1 < len(runes) && (isSentenceEnd(runes[i+1]) || runes[i+1] == '"' || runes[i+1] == '\'' || runes[i+1] == '”') {
				i++
				b.WriteRune(runes[i])
			}
			if t := strings.TrimSpace(b.String()); t != "" {
				out = append(out, t)
			}
			b.Reset()
		}
	}
	if t := strings.TrimSpace(b.String()); t != "" {
		out = append(out, t)
	}
	return out
}

func isSentenceEnd(r rune) bool {
	switch r {
	case '.', '!', '?', '。', '！', '？', '…':
		return true
	}
	return false
}

// IsCJK reports whether r is a CJK ideograph (or kana/hangul, which we
// treat the same way for segmentation purposes).
func IsCJK(r rune) bool {
	switch {
	case r >= 0x4E00 && r <= 0x9FFF: // CJK Unified Ideographs
		return true
	case r >= 0x3400 && r <= 0x4DBF: // Extension A
		return true
	case r >= 0x3040 && r <= 0x30FF: // Hiragana + Katakana
		return true
	case r >= 0xAC00 && r <= 0xD7AF: // Hangul syllables
		return true
	case r >= 0xF900 && r <= 0xFAFF: // CJK compatibility
		return true
	}
	return false
}

// CJKRatio returns the fraction of letters in s that are CJK.
func CJKRatio(s string) float64 {
	letters, cjk := 0, 0
	for _, r := range s {
		if unicode.IsLetter(r) {
			letters++
			if IsCJK(r) {
				cjk++
			}
		}
	}
	if letters == 0 {
		return 0
	}
	return float64(cjk) / float64(letters)
}

// AlnumRatio returns the fraction of all runes in s that are letters or
// digits.
func AlnumRatio(s string) float64 {
	total, alnum := 0, 0
	for _, r := range s {
		total++
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			alnum++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(alnum) / float64(total)
}

// SpecialCharRatio returns the fraction of runes that are neither
// letters, digits, nor plain whitespace — the paper's
// special_characters_filter statistic.
func SpecialCharRatio(s string) float64 {
	total, special := 0, 0
	for _, r := range s {
		total++
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && !unicode.IsSpace(r) {
			special++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(special) / float64(total)
}

// DigitRatio returns the fraction of runes that are decimal digits.
func DigitRatio(s string) float64 {
	total, digits := 0, 0
	for _, r := range s {
		total++
		if unicode.IsDigit(r) {
			digits++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(digits) / float64(total)
}
