// Package text provides the language-processing primitives that the
// operator pool builds on: word and sentence segmentation, n-grams,
// unicode repair and normalization, a character-trigram language
// identifier, and the built-in stopword and flagged-word resources.
//
// These are the stand-ins for the Python stack the paper uses (regex
// tokenizers, fasttext language ID, curated word lists); see DESIGN.md for
// the substitution notes.
package text

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// IsWordRune reports whether r may appear inside a non-CJK word token:
// letters, digits, apostrophes, hyphens and underscores (identifiers in
// code-heavy corpora segment as single tokens).
func IsWordRune(r rune) bool {
	if r < utf8.RuneSelf {
		return r == '\'' || r == '-' || r == '_' ||
			('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9')
	}
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Words segments text into word tokens. Latin-script words are maximal
// runs of letters, digits, apostrophes, hyphens and underscores; each
// CJK ideograph is its own token (Chinese has no spaces, and
// per-character tokens are the standard approximation).
func Words(s string) []string {
	return WordsInto(s, make([]string, 0, len(s)/6+1))
}

// WordsInto appends the word tokens of s to dst and returns the extended
// slice — the allocation-free form of Words: tokens are substrings of s
// (no per-token copies), and a dst with capacity left allocates nothing.
func WordsInto(s string, dst []string) []string {
	start := -1 // byte offset of the current token, -1 when outside one
	for i, r := range s {
		if r < utf8.RuneSelf {
			// ASCII fast path: one comparison chain, no table lookups.
			if r == '\'' || r == '-' || r == '_' ||
				('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9') {
				if start < 0 {
					start = i
				}
			} else if start >= 0 {
				dst = append(dst, s[start:i])
				start = -1
			}
			continue
		}
		switch {
		case IsCJK(r):
			if start >= 0 {
				dst = append(dst, s[start:i])
				start = -1
			}
			dst = append(dst, s[i:i+utf8.RuneLen(r)])
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			if start < 0 {
				start = i
			}
		default:
			if start >= 0 {
				dst = append(dst, s[start:i])
				start = -1
			}
		}
	}
	if start >= 0 {
		dst = append(dst, s[start:])
	}
	return dst
}

// WordsLower is Words with every token lower-cased.
func WordsLower(s string) []string {
	return WordsLowerInto(s, make([]string, 0, len(s)/6+1))
}

// WordsLowerInto appends the lower-cased word tokens of s to dst. The
// whole text is lower-cased once (a no-op returning s itself when s has
// no upper-case runes) and segmented with substring tokens, so already
// lower-case text tokenizes allocation-free. Because strings.ToLower
// maps rune-for-rune and case mapping never changes a rune's word/CJK
// class, the tokens equal strings.ToLower of each Words(s) token.
func WordsLowerInto(s string, dst []string) []string {
	return WordsInto(strings.ToLower(s), dst)
}

// EachWord calls fn for every word token of s, in order, without
// building a slice — the iterator form for single-pass consumers. fn
// returning false stops the iteration.
func EachWord(s string, fn func(word string) bool) {
	start := -1
	for i, r := range s {
		switch {
		case IsCJK(r):
			if start >= 0 {
				if !fn(s[start:i]) {
					return
				}
				start = -1
			}
			if !fn(s[i : i+utf8.RuneLen(r)]) {
				return
			}
		case IsWordRune(r):
			if start < 0 {
				start = i
			}
		default:
			if start >= 0 {
				if !fn(s[start:i]) {
					return
				}
				start = -1
			}
		}
	}
	if start >= 0 {
		fn(s[start:])
	}
}

// Fields splits on whitespace only (raw tokens including punctuation),
// matching the "standard tokenizer" used by the quality classifier.
func Fields(s string) []string { return strings.Fields(s) }

// Lines splits text into lines without trailing newline characters.
func Lines(s string) []string {
	if s == "" {
		return nil
	}
	return LinesInto(s, make([]string, 0, strings.Count(s, "\n")+1))
}

// LinesInto appends the lines of s to dst without trailing newline
// characters; lines are substrings of s, so a dst with capacity left
// allocates nothing. Empty input appends nothing, matching Lines.
func LinesInto(s string, dst []string) []string {
	if s == "" {
		return dst
	}
	for {
		i := strings.IndexByte(s, '\n')
		if i < 0 {
			dst = append(dst, strings.TrimSuffix(s, "\r"))
			return dst
		}
		dst = append(dst, strings.TrimSuffix(s[:i], "\r"))
		s = s[i+1:]
	}
}

// Paragraphs splits text on blank lines.
func Paragraphs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, "\n\n") {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Sentences splits text into sentences on ASCII and CJK terminal
// punctuation. Terminators are kept attached to their sentence.
func Sentences(s string) []string { return SentencesInto(s, nil) }

// SentencesInto appends the sentences of s to dst; sentences are trimmed
// substrings of s, so a dst with capacity left allocates nothing.
func SentencesInto(s string, dst []string) []string {
	start, i := 0, 0
	for i < len(s) {
		r, w := utf8.DecodeRuneInString(s[i:])
		i += w
		if !isSentenceEnd(r) {
			continue
		}
		// Absorb a run of closing quotes/terminators.
		for i < len(s) {
			r2, w2 := utf8.DecodeRuneInString(s[i:])
			if !isSentenceEnd(r2) && r2 != '"' && r2 != '\'' && r2 != '”' {
				break
			}
			i += w2
		}
		if t := strings.TrimSpace(s[start:i]); t != "" {
			dst = append(dst, t)
		}
		start = i
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		dst = append(dst, t)
	}
	return dst
}

func isSentenceEnd(r rune) bool {
	switch r {
	case '.', '!', '?', '。', '！', '？', '…':
		return true
	}
	return false
}

// IsCJK reports whether r is a CJK ideograph (or kana/hangul, which we
// treat the same way for segmentation purposes).
func IsCJK(r rune) bool {
	switch {
	case r >= 0x4E00 && r <= 0x9FFF: // CJK Unified Ideographs
		return true
	case r >= 0x3400 && r <= 0x4DBF: // Extension A
		return true
	case r >= 0x3040 && r <= 0x30FF: // Hiragana + Katakana
		return true
	case r >= 0xAC00 && r <= 0xD7AF: // Hangul syllables
		return true
	case r >= 0xF900 && r <= 0xFAFF: // CJK compatibility
		return true
	}
	return false
}

// CJKRatio returns the fraction of letters in s that are CJK.
func CJKRatio(s string) float64 {
	letters, cjk := 0, 0
	for _, r := range s {
		if unicode.IsLetter(r) {
			letters++
			if IsCJK(r) {
				cjk++
			}
		}
	}
	if letters == 0 {
		return 0
	}
	return float64(cjk) / float64(letters)
}

// AlnumRatio returns the fraction of all runes in s that are letters or
// digits.
func AlnumRatio(s string) float64 {
	total, alnum := 0, 0
	for _, r := range s {
		total++
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			alnum++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(alnum) / float64(total)
}

// SpecialCharRatio returns the fraction of runes that are neither
// letters, digits, nor plain whitespace — the paper's
// special_characters_filter statistic.
func SpecialCharRatio(s string) float64 {
	total, special := 0, 0
	for _, r := range s {
		total++
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && !unicode.IsSpace(r) {
			special++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(special) / float64(total)
}

// DigitRatio returns the fraction of runes that are decimal digits.
func DigitRatio(s string) float64 {
	total, digits := 0, 0
	for _, r := range s {
		total++
		if unicode.IsDigit(r) {
			digits++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(digits) / float64(total)
}
