package text

import "strings"

// CharNGrams returns all rune n-grams of s (overlapping). For n <= 0 or
// texts shorter than n runes it returns nil.
func CharNGrams(s string, n int) []string {
	if n <= 0 {
		return nil
	}
	runes := []rune(s)
	if len(runes) < n {
		return nil
	}
	out := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		out = append(out, string(runes[i:i+n]))
	}
	return out
}

// WordNGrams returns all word n-grams joined with a single space.
func WordNGrams(words []string, n int) []string {
	if n <= 0 || len(words) < n {
		return nil
	}
	out := make([]string, 0, len(words)-n+1)
	for i := 0; i+n <= len(words); i++ {
		out = append(out, strings.Join(words[i:i+n], " "))
	}
	return out
}

// RepetitionRatio computes the fraction of n-gram occurrences that are
// repeats of an already-seen n-gram. It is the statistic behind the
// character_repetition_filter and word_repetition_filter: boilerplate and
// degenerate text repeat the same n-grams over and over.
func RepetitionRatio(ngrams []string) float64 {
	if len(ngrams) == 0 {
		return 0
	}
	seen := make(map[string]struct{}, len(ngrams))
	dup := 0
	for _, g := range ngrams {
		if _, ok := seen[g]; ok {
			dup++
			continue
		}
		seen[g] = struct{}{}
	}
	return float64(dup) / float64(len(ngrams))
}

// TopKFraction returns the fraction of occurrences covered by the k most
// frequent items, a concentration measure used by the analyzer.
func TopKFraction(items []string, k int) float64 {
	if len(items) == 0 || k <= 0 {
		return 0
	}
	counts := make(map[string]int, len(items))
	for _, it := range items {
		counts[it]++
	}
	top := make([]int, 0, len(counts))
	for _, c := range counts {
		top = append(top, c)
	}
	// Partial selection: simple sort is fine at these sizes.
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j] > top[i] {
				top[i], top[j] = top[j], top[i]
			}
		}
		if i+1 >= k {
			break
		}
	}
	sum := 0
	for i := 0; i < k && i < len(top); i++ {
		sum += top[i]
	}
	return float64(sum) / float64(len(items))
}
