package text

import (
	"slices"
	"strings"
	"sync"
	"unicode/utf8"
)

// CharNGrams returns all rune n-grams of s (overlapping). For n <= 0 or
// texts shorter than n runes it returns nil.
func CharNGrams(s string, n int) []string {
	if n <= 0 {
		return nil
	}
	runes := []rune(s)
	if len(runes) < n {
		return nil
	}
	out := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		out = append(out, string(runes[i:i+n]))
	}
	return out
}

// WordNGrams returns all word n-grams joined with a single space.
func WordNGrams(words []string, n int) []string {
	if n <= 0 || len(words) < n {
		return nil
	}
	out := make([]string, 0, len(words)-n+1)
	for i := 0; i+n <= len(words); i++ {
		out = append(out, strings.Join(words[i:i+n], " "))
	}
	return out
}

// RepetitionRatio computes the fraction of n-gram occurrences that are
// repeats of an already-seen n-gram. It is the statistic behind the
// character_repetition_filter and word_repetition_filter: boilerplate and
// degenerate text repeat the same n-grams over and over.
func RepetitionRatio(ngrams []string) float64 {
	if len(ngrams) == 0 {
		return 0
	}
	seen := make(map[string]struct{}, len(ngrams))
	dup := 0
	for _, g := range ngrams {
		if _, ok := seen[g]; ok {
			dup++
			continue
		}
		seen[g] = struct{}{}
	}
	return float64(dup) / float64(len(ngrams))
}

// --- Hashed n-gram statistics -----------------------------------------
//
// The repetition filters only need *equality* of n-grams, never their
// text, so the hot path hashes each gram with a rolling polynomial over
// per-unit (rune or word) hashes instead of materializing joined gram
// strings. Gram multisets are collected into pooled scratch buffers and
// sorted to count distinct values: zero steady-state allocation per
// sample.

// ngramB is the polynomial base of the rolling gram hash.
const ngramB = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finalizer, used to avalanche unit hashes.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashString is an inline FNV-64a over s (no allocation, identical to
// hash/fnv's sum for the same bytes).
func HashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

var hashBufPool = sync.Pool{New: func() any { b := make([]uint64, 0, 256); return &b }}

// repetitionFromHashes computes the RepetitionRatio of a gram multiset
// given its hash values; grams is sorted in place.
func repetitionFromHashes(grams []uint64) float64 {
	if len(grams) == 0 {
		return 0
	}
	slices.Sort(grams)
	distinct := 1
	for i := 1; i < len(grams); i++ {
		if grams[i] != grams[i-1] {
			distinct++
		}
	}
	return float64(len(grams)-distinct) / float64(len(grams))
}

// rollGrams appends the rolling polynomial hash of every n-window of
// units to grams: H_i = Σ_j mix64(unit_{i+j})·B^{n-1-j}.
func rollGrams(units []uint64, n int, grams []uint64) []uint64 {
	// B^{n-1} for removing the outgoing unit.
	bPow := uint64(1)
	for i := 1; i < n; i++ {
		bPow *= ngramB
	}
	var h uint64
	for i, u := range units {
		h = h*ngramB + mix64(u)
		if i >= n-1 {
			grams = append(grams, h)
			h -= mix64(units[i-n+1]) * bPow
		}
	}
	return grams
}

// CharNGramRepetitionRatio is RepetitionRatio(CharNGrams(s, n)) computed
// over gram hashes, without materializing the grams.
func CharNGramRepetitionRatio(s string, n int) float64 {
	if n <= 0 || utf8.RuneCountInString(s) < n {
		return 0
	}
	unitsP := hashBufPool.Get().(*[]uint64)
	units := (*unitsP)[:0]
	for _, r := range s {
		units = append(units, uint64(r))
	}
	gramsP := hashBufPool.Get().(*[]uint64)
	grams := rollGrams(units, n, (*gramsP)[:0])
	ratio := repetitionFromHashes(grams)
	*unitsP = units
	*gramsP = grams
	hashBufPool.Put(unitsP)
	hashBufPool.Put(gramsP)
	return ratio
}

// WordNGramRepetitionRatio is RepetitionRatio(WordNGrams(words, n))
// computed over gram hashes. Word hashes separate the units (FNV over
// the token bytes), so "ab c" and "a bc" windows hash differently just
// as the joined-gram text did.
func WordNGramRepetitionRatio(words []string, n int) float64 {
	if n <= 0 || len(words) < n {
		return 0
	}
	unitsP := hashBufPool.Get().(*[]uint64)
	units := (*unitsP)[:0]
	for _, w := range words {
		units = append(units, HashString(w))
	}
	gramsP := hashBufPool.Get().(*[]uint64)
	grams := rollGrams(units, n, (*gramsP)[:0])
	ratio := repetitionFromHashes(grams)
	*unitsP = units
	*gramsP = grams
	hashBufPool.Put(unitsP)
	hashBufPool.Put(gramsP)
	return ratio
}

// DistinctRatio returns the fraction of distinct items, compared by
// hash — the allocation-free form of the unique-words statistic.
func DistinctRatio(items []string) float64 {
	if len(items) == 0 {
		return 0
	}
	bufP := hashBufPool.Get().(*[]uint64)
	buf := (*bufP)[:0]
	for _, it := range items {
		buf = append(buf, HashString(it))
	}
	slices.Sort(buf)
	distinct := 1
	for i := 1; i < len(buf); i++ {
		if buf[i] != buf[i-1] {
			distinct++
		}
	}
	*bufP = buf
	hashBufPool.Put(bufP)
	return float64(distinct) / float64(len(items))
}

// TopKFraction returns the fraction of occurrences covered by the k most
// frequent items, a concentration measure used by the analyzer.
func TopKFraction(items []string, k int) float64 {
	if len(items) == 0 || k <= 0 {
		return 0
	}
	counts := make(map[string]int, len(items))
	for _, it := range items {
		counts[it]++
	}
	top := make([]int, 0, len(counts))
	for _, c := range counts {
		top = append(top, c)
	}
	// Partial selection: simple sort is fine at these sizes.
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j] > top[i] {
				top[i], top[j] = top[j], top[i]
			}
		}
		if i+1 >= k {
			break
		}
	}
	sum := 0
	for i := 0; i < k && i < len(top); i++ {
		sum += top[i]
	}
	return float64(sum) / float64(len(items))
}
