package text

import (
	"math"
	"sort"
	"strings"
)

// LangID is a character-trigram language identifier, the stand-in for the
// fasttext model used by the paper's language_id_score_filter. Profiles
// are built from embedded seed text; Classify returns the best language
// and a confidence score in [0, 1].
type LangID struct {
	profiles map[string]map[string]float64
}

// seedTexts are small, representative snippets per language. Trigram
// profiles extracted from them separate the synthetic corpora cleanly;
// they are not intended to match fasttext accuracy on real web text.
var seedTexts = map[string]string{
	"en": `the quick brown fox jumps over the lazy dog and then runs through
the forest where many animals live together in peace this is a sentence
with common english words that people use every day when they talk about
their work their families and the world around them we should also note
that language models are trained on large amounts of text which makes
the distribution of letters and words very important for all of these
systems and their users everywhere something about history science and
government with information knowledge education research development`,
	"de": `der schnelle braune fuchs springt über den faulen hund und läuft
dann durch den wald wo viele tiere zusammen leben dies ist ein satz mit
häufigen deutschen wörtern die menschen jeden tag benutzen wenn sie über
ihre arbeit ihre familien und die welt um sie herum sprechen wir sollten
auch beachten dass sprachmodelle auf großen textmengen trainiert werden
was die verteilung von buchstaben und wörtern sehr wichtig macht etwas
über geschichte wissenschaft und regierung mit informationen wissen`,
	"fr": `le rapide renard brun saute par dessus le chien paresseux et court
ensuite à travers la forêt où beaucoup d'animaux vivent ensemble en paix
ceci est une phrase avec des mots français courants que les gens utilisent
tous les jours quand ils parlent de leur travail de leurs familles et du
monde qui les entoure nous devons aussi noter que les modèles de langue
sont entraînés sur de grandes quantités de texte ce qui rend la
distribution des lettres et des mots très importante pour ces systèmes`,
	"es": `el rápido zorro marrón salta sobre el perro perezoso y luego corre
por el bosque donde muchos animales viven juntos en paz esta es una frase
con palabras comunes en español que la gente usa todos los días cuando
hablan de su trabajo sus familias y el mundo que les rodea también debemos
señalar que los modelos de lenguaje se entrenan con grandes cantidades de
texto lo que hace que la distribución de letras y palabras sea muy
importante para todos estos sistemas y sus usuarios en todas partes`,
	"zh": `快速的棕色狐狸跳过懒狗然后跑过森林那里有许多动物和平地生活在一起这是
一个包含常用中文词汇的句子人们每天谈论工作家庭和周围世界时都会使用这些词我们
还应该注意语言模型是在大量文本上训练的这使得字母和单词的分布对所有这些系统及
其用户都非常重要历史科学政府信息知识教育研究发展数据处理质量多样性`,
}

// NewLangID builds the identifier from the embedded seed profiles.
func NewLangID() *LangID {
	l := &LangID{profiles: make(map[string]map[string]float64, len(seedTexts))}
	for lang, seed := range seedTexts {
		l.profiles[lang] = trigramProfile(seed)
	}
	return l
}

// Languages returns the supported language codes, sorted.
func (l *LangID) Languages() []string {
	out := make([]string, 0, len(l.profiles))
	for k := range l.profiles {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Classify returns the most likely language for s and a confidence score
// in [0, 1]. Empty or too-short input yields ("", 0).
func (l *LangID) Classify(s string) (lang string, score float64) {
	// Fast, reliable path: a high share of CJK letters is decisive.
	if r := CJKRatio(s); r > 0.5 {
		return "zh", r
	}
	p := trigramProfile(strings.ToLower(s))
	if len(p) == 0 {
		return "", 0
	}
	type cand struct {
		lang string
		sim  float64
	}
	cands := make([]cand, 0, len(l.profiles))
	for lg, prof := range l.profiles {
		cands = append(cands, cand{lg, cosine(p, prof)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sim != cands[j].sim {
			return cands[i].sim > cands[j].sim
		}
		return cands[i].lang < cands[j].lang
	})
	best := cands[0]
	if best.sim <= 0 {
		return "", 0
	}
	// Confidence: the winner's share of total similarity mass, sharpened;
	// short texts with ambiguous trigrams land near 1/len(languages).
	total := 0.0
	for _, c := range cands {
		total += c.sim
	}
	conf := best.sim / total
	// Rescale from [1/n, 1] to [0, 1].
	n := float64(len(cands))
	conf = (conf - 1/n) / (1 - 1/n)
	if conf < 0 {
		conf = 0
	}
	return best.lang, math.Min(1, math.Sqrt(conf)*1.6)
}

// Score returns the confidence that s is in language want.
func (l *LangID) Score(s, want string) float64 {
	lang, score := l.Classify(s)
	if lang != want {
		return 0
	}
	return score
}

func trigramProfile(s string) map[string]float64 {
	grams := CharNGrams(s, 3)
	if len(grams) == 0 {
		return nil
	}
	p := make(map[string]float64, len(grams))
	for _, g := range grams {
		if strings.TrimSpace(g) == "" {
			continue
		}
		p[g]++
	}
	return p
}

// cosine sums in sorted key order so the score does not depend on Go's
// randomized map iteration (float addition is not associative; a
// nondeterministic sum would make filter verdicts nondeterministic).
func cosine(a, b map[string]float64) float64 {
	keysA := make([]string, 0, len(a))
	for k := range a {
		keysA = append(keysA, k)
	}
	sort.Strings(keysA)
	var dot, na, nb float64
	for _, k := range keysA {
		av := a[k]
		na += av * av
		if bv, ok := b[k]; ok {
			dot += av * bv
		}
	}
	keysB := make([]string, 0, len(b))
	for k := range b {
		keysB = append(keysB, k)
	}
	sort.Strings(keysB)
	for _, k := range keysB {
		nb += b[k] * b[k]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
