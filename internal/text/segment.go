package text

import "sync"

// Segmenter owns reusable token buffers so the per-sample hot path can
// segment words, lines and sentences without allocating: each call
// reuses the buffer of the previous one. The returned slices alias the
// segmenter's buffers and are valid only until the next call of the same
// method (or Release); callers that need the tokens to outlive the
// segmenter must copy them.
//
// A Segmenter is not safe for concurrent use; get one per goroutine from
// the pool (GetSegmenter / PutSegmenter).
type Segmenter struct {
	words     []string
	wordsLow  []string
	lines     []string
	sentences []string
}

// Words segments s into word tokens, reusing the segmenter's buffer.
func (g *Segmenter) Words(s string) []string {
	g.words = WordsInto(s, g.words[:0])
	return g.words
}

// WordsLower segments s into lower-cased word tokens, reusing the
// segmenter's buffer.
func (g *Segmenter) WordsLower(s string) []string {
	g.wordsLow = WordsLowerInto(s, g.wordsLow[:0])
	return g.wordsLow
}

// Lines splits s into lines, reusing the segmenter's buffer.
func (g *Segmenter) Lines(s string) []string {
	g.lines = LinesInto(s, g.lines[:0])
	return g.lines
}

// Sentences splits s into sentences, reusing the segmenter's buffer.
func (g *Segmenter) Sentences(s string) []string {
	g.sentences = SentencesInto(s, g.sentences[:0])
	return g.sentences
}

var segmenterPool = sync.Pool{New: func() any { return &Segmenter{} }}

// GetSegmenter returns a pooled segmenter.
func GetSegmenter() *Segmenter { return segmenterPool.Get().(*Segmenter) }

// PutSegmenter returns g to the pool, clearing parked token substrings
// so they don't pin their source texts alive. The slices it handed out
// must no longer be referenced.
func PutSegmenter(g *Segmenter) {
	for _, buf := range []*[]string{&g.words, &g.wordsLow, &g.lines, &g.sentences} {
		b := (*buf)[:cap(*buf)]
		for i := range b {
			b[i] = ""
		}
		*buf = b[:0]
	}
	segmenterPool.Put(g)
}
