package text

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestWordsLatin(t *testing.T) {
	got := Words("Hello, world! It's a test-case.")
	want := []string{"Hello", "world", "It's", "a", "test-case"}
	if len(got) != len(want) {
		t.Fatalf("Words = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Words[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestWordsCJK(t *testing.T) {
	got := Words("数据处理 data")
	want := []string{"数", "据", "处", "理", "data"}
	if len(got) != len(want) {
		t.Fatalf("Words = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Words[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestWordsEmpty(t *testing.T) {
	if got := Words(""); len(got) != 0 {
		t.Fatalf("Words(\"\") = %v", got)
	}
	if got := Words("   \n\t  "); len(got) != 0 {
		t.Fatalf("Words(spaces) = %v", got)
	}
}

func TestWordsLower(t *testing.T) {
	got := WordsLower("Hello WORLD")
	if got[0] != "hello" || got[1] != "world" {
		t.Fatalf("WordsLower = %v", got)
	}
}

func TestLines(t *testing.T) {
	got := Lines("a\nb\r\nc")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("Lines = %v", got)
	}
	if Lines("") != nil {
		t.Fatal("Lines(\"\") should be nil")
	}
}

func TestParagraphs(t *testing.T) {
	got := Paragraphs("para one\nstill one\n\npara two\n\n\n  \n\npara three")
	if len(got) != 3 {
		t.Fatalf("Paragraphs = %v", got)
	}
}

func TestSentences(t *testing.T) {
	got := Sentences("First sentence. Second! Third? 中文句子。 Trailing fragment")
	if len(got) != 5 {
		t.Fatalf("Sentences = %v (%d)", got, len(got))
	}
	if got[0] != "First sentence." {
		t.Fatalf("Sentences[0] = %q", got[0])
	}
	if got[4] != "Trailing fragment" {
		t.Fatalf("Sentences[4] = %q", got[4])
	}
}

func TestCharNGrams(t *testing.T) {
	got := CharNGrams("abcd", 2)
	want := []string{"ab", "bc", "cd"}
	if len(got) != len(want) {
		t.Fatalf("CharNGrams = %v", got)
	}
	if CharNGrams("ab", 3) != nil {
		t.Fatal("short input should yield nil")
	}
	if CharNGrams("abc", 0) != nil {
		t.Fatal("n=0 should yield nil")
	}
}

func TestWordNGrams(t *testing.T) {
	got := WordNGrams([]string{"a", "b", "c"}, 2)
	if len(got) != 2 || got[0] != "a b" || got[1] != "b c" {
		t.Fatalf("WordNGrams = %v", got)
	}
}

func TestRepetitionRatio(t *testing.T) {
	if r := RepetitionRatio([]string{"a", "b", "c"}); r != 0 {
		t.Fatalf("unique ratio = %v", r)
	}
	if r := RepetitionRatio([]string{"a", "a", "a", "a"}); r != 0.75 {
		t.Fatalf("repeated ratio = %v", r)
	}
	if r := RepetitionRatio(nil); r != 0 {
		t.Fatalf("empty ratio = %v", r)
	}
}

func TestRatios(t *testing.T) {
	if r := AlnumRatio("ab12"); r != 1 {
		t.Fatalf("AlnumRatio = %v", r)
	}
	if r := AlnumRatio("a!"); r != 0.5 {
		t.Fatalf("AlnumRatio = %v", r)
	}
	if r := AlnumRatio(""); r != 0 {
		t.Fatalf("AlnumRatio empty = %v", r)
	}
	if r := SpecialCharRatio("ab!?"); r != 0.5 {
		t.Fatalf("SpecialCharRatio = %v", r)
	}
	if r := DigitRatio("a1b2"); r != 0.5 {
		t.Fatalf("DigitRatio = %v", r)
	}
	if r := CJKRatio("中文ab"); r != 0.5 {
		t.Fatalf("CJKRatio = %v", r)
	}
}

func TestNormalizeWhitespace(t *testing.T) {
	got := NormalizeWhitespace("  a   b\t\tc  \n\n\n\nd  ")
	want := "a b c\n\nd"
	if got != want {
		t.Fatalf("NormalizeWhitespace = %q, want %q", got, want)
	}
}

func TestNormalizeWhitespaceUnicodeSpaces(t *testing.T) {
	got := NormalizeWhitespace("a  b　c")
	if got != "a b c" {
		t.Fatalf("unicode spaces: %q", got)
	}
}

func TestRemoveNonPrinting(t *testing.T) {
	got := RemoveNonPrinting("a\x00b\x07c\nd\te�f")
	if got != "abc\nd\tef" {
		t.Fatalf("RemoveNonPrinting = %q", got)
	}
}

func TestFixUnicodeMojibake(t *testing.T) {
	// "café" encoded UTF-8, decoded Latin-1 → "cafÃ©".
	if got := FixUnicode("cafÃ© au lait"); got != "café au lait" {
		t.Fatalf("FixUnicode = %q", got)
	}
	// Clean text passes through untouched.
	clean := "already clean — ünïcode fine."
	if got := FixUnicode(clean); got != clean {
		t.Fatalf("clean text changed: %q", got)
	}
}

func TestNormalizePunctuation(t *testing.T) {
	got := NormalizePunctuation("«quote»，done。")
	if got != "\"quote\",done. " {
		t.Fatalf("NormalizePunctuation = %q", got)
	}
}

func TestStripHTML(t *testing.T) {
	in := `<html><head><style>body{color:red}</style></head>
<body><h1>Title</h1><p>Hello &amp; welcome.</p><script>var x=1;</script>
<div>More</div></body></html>`
	got := StripHTML(in)
	if strings.Contains(got, "<") || strings.Contains(got, "color:red") || strings.Contains(got, "var x") {
		t.Fatalf("StripHTML left markup: %q", got)
	}
	if !strings.Contains(got, "Title") || !strings.Contains(got, "Hello & welcome.") || !strings.Contains(got, "More") {
		t.Fatalf("StripHTML lost content: %q", got)
	}
}

func TestLangIDEnglish(t *testing.T) {
	l := NewLangID()
	lang, score := l.Classify("The government announced new research about science and history for all the people in the country.")
	if lang != "en" {
		t.Fatalf("Classify = %q (score %v), want en", lang, score)
	}
	if score <= 0.2 {
		t.Fatalf("english score too low: %v", score)
	}
}

func TestLangIDChinese(t *testing.T) {
	l := NewLangID()
	lang, score := l.Classify("数据处理系统对于大型语言模型非常重要")
	if lang != "zh" || score < 0.5 {
		t.Fatalf("Classify = %q, %v, want zh", lang, score)
	}
}

func TestLangIDOthers(t *testing.T) {
	l := NewLangID()
	cases := map[string]string{
		"de": "der schnelle fuchs springt über den faulen hund durch den wald und die tiere leben zusammen",
		"fr": "le renard rapide saute par dessus le chien paresseux dans la forêt où les animaux vivent ensemble",
		"es": "el zorro rápido salta sobre el perro perezoso en el bosque donde los animales viven juntos",
	}
	for want, s := range cases {
		if lang, _ := l.Classify(s); lang != want {
			t.Errorf("Classify(%s sample) = %q, want %q", want, lang, want)
		}
	}
}

func TestLangIDEmpty(t *testing.T) {
	l := NewLangID()
	if lang, score := l.Classify(""); lang != "" || score != 0 {
		t.Fatalf("empty = %q, %v", lang, score)
	}
}

func TestLangIDScore(t *testing.T) {
	l := NewLangID()
	en := "the quick brown fox jumps over the lazy dog and the people talk about their work"
	if s := l.Score(en, "en"); s <= 0 {
		t.Fatalf("Score(en) = %v", s)
	}
	if s := l.Score(en, "de"); s != 0 {
		t.Fatalf("Score(en as de) = %v", s)
	}
}

func TestStopwordsAndFlagged(t *testing.T) {
	en := Stopwords("en")
	if _, ok := en["the"]; !ok {
		t.Fatal("'the' missing from english stopwords")
	}
	zh := Stopwords("zh")
	if _, ok := zh["的"]; !ok {
		t.Fatal("'的' missing from chinese stopwords")
	}
	if Stopwords("xx") != nil {
		t.Fatal("unknown language should be nil")
	}
	fl := FlaggedWords("en")
	if _, ok := fl["damn"]; !ok {
		t.Fatal("flagged word missing")
	}
}

func TestVerbNounPairs(t *testing.T) {
	pairs := VerbNounPairs([]string{"please", "write", "a", "short", "story", "about", "cats"})
	if len(pairs) != 1 || pairs[0] != [2]string{"write", "story"} {
		t.Fatalf("VerbNounPairs = %v", pairs)
	}
	// Noun too far away (>6 tokens) should not pair.
	pairs = VerbNounPairs([]string{"write", "x", "x", "x", "x", "x", "x", "story"})
	if len(pairs) != 0 {
		t.Fatalf("distant pair should not match: %v", pairs)
	}
}

func TestTopKFraction(t *testing.T) {
	items := []string{"a", "a", "a", "b", "c"}
	if f := TopKFraction(items, 1); f != 0.6 {
		t.Fatalf("TopKFraction(1) = %v", f)
	}
	if f := TopKFraction(items, 3); f != 1.0 {
		t.Fatalf("TopKFraction(3) = %v", f)
	}
	if f := TopKFraction(nil, 2); f != 0 {
		t.Fatalf("TopKFraction(nil) = %v", f)
	}
}

// Property: NormalizeWhitespace is idempotent.
func TestPropertyNormalizeWhitespaceIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := NormalizeWhitespace(s)
		twice := NormalizeWhitespace(once)
		return once == twice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RepetitionRatio is always within [0, 1).
func TestPropertyRepetitionRatioBounds(t *testing.T) {
	f := func(ws []string) bool {
		r := RepetitionRatio(ws)
		return r >= 0 && r < 1 || (len(ws) == 0 && r == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CharNGrams(s, n) yields len(runes)-n+1 grams for long enough s.
func TestPropertyCharNGramCount(t *testing.T) {
	f := func(s string, n8 uint8) bool {
		n := int(n8%5) + 1
		grams := CharNGrams(s, n)
		runes := []rune(s)
		if len(runes) < n {
			return grams == nil
		}
		return len(grams) == len(runes)-n+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Words never returns tokens containing spaces.
func TestPropertyWordsNoSpaces(t *testing.T) {
	f := func(s string) bool {
		for _, w := range Words(s) {
			if strings.ContainsAny(w, " \t\n") || w == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
