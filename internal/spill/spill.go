// Package spill provides bounded-memory external data structures for the
// deduplication operators: sorted runs with k-way external merge (exact
// dedup), a disk-backed signature set for the streaming shared index, and
// a partitioned on-disk LSH bucket table (minhash / simhash / vector).
//
// All structures share one binary columnar frame format ("DJS1"): a
// 16-byte header followed by a keys column and an optional values column,
// both little-endian uint64. Encoding and decoding go through pooled
// buffers, mirroring the hand-rolled JSONL codec on the sample hot path.
// Every structure accounts the runs and bytes it writes so callers can
// surface spill activity as metrics and journal events, and removes its
// files on Close.
package spill

import (
	"os"
	"sync/atomic"
)

// Config locates and bounds one spill-capable structure. BudgetBytes is
// the in-memory ceiling the structure must respect; Dir is where runs and
// partitions are written (created on demand).
type Config struct {
	Dir         string
	BudgetBytes int64
}

// Stats reports what a structure actually wrote. Runs counts spill files
// (sorted runs, set runs, LSH partitions); Bytes is the total bytes
// written to disk. Both stay zero when everything fit in memory.
type Stats struct {
	Runs  int64
	Bytes int64
}

// Pair is one (key, value) record: a signature or bucket key paired with
// a document index.
type Pair struct{ K, V uint64 }

// counters is the shared atomic stats block embedded by each structure.
type counters struct {
	runs  atomic.Int64
	bytes atomic.Int64
}

func (c *counters) account(n int64) {
	c.runs.Add(1)
	c.bytes.Add(n)
}

func (c *counters) snapshot() Stats {
	return Stats{Runs: c.runs.Load(), Bytes: c.bytes.Load()}
}

// Mix is the partition/fingerprint mixer (splitmix64 finalizer). It keeps
// partition assignment decorrelated from the callers' own key hashing; the
// streaming engine uses it to route signatures to index partitions, so the
// partition choice is a pure function of the signature alone.
func Mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix keeps the package-internal spelling.
func mix(x uint64) uint64 { return Mix(x) }

// ensureDir creates dir (and parents) if needed.
func ensureDir(dir string) error { return os.MkdirAll(dir, 0o755) }

// createRun opens a fresh uniquely-named spill file in dir.
func createRun(dir, pattern string) (*os.File, error) {
	if err := ensureDir(dir); err != nil {
		return nil, err
	}
	return os.CreateTemp(dir, pattern)
}

// removeAll deletes the given files, ignoring not-exist errors.
func removeAll(paths []string) {
	for _, p := range paths {
		if p != "" {
			os.Remove(p)
		}
	}
}
