package spill

import (
	"math/rand"
	"sort"
	"testing"
)

// TestFrameRoundTrip pins the columnar codec: header, both column
// layouts, and multi-frame concatenation.
func TestFrameRoundTrip(t *testing.T) {
	pairs := []Pair{{K: 3, V: 1}, {K: 0, V: 9}, {K: ^uint64(0), V: 42}}
	bp := encodePairFrame(pairs)
	count, withVals, err := parseFrameHeader(*bp)
	if err != nil || count != 3 || !withVals {
		t.Fatalf("header = (%d, %v, %v), want (3, true, nil)", count, withVals, err)
	}
	got, err := decodePairFrames(*bp, nil)
	if err != nil {
		t.Fatal(err)
	}
	putFrameBuf(bp)
	if len(got) != len(pairs) {
		t.Fatalf("decoded %d pairs, want %d", len(got), len(pairs))
	}
	for i := range pairs {
		if got[i] != pairs[i] {
			t.Fatalf("pair %d = %+v, want %+v", i, got[i], pairs[i])
		}
	}

	// Two concatenated frames decode as one stream.
	b1 := encodePairFrame(pairs[:1])
	b2 := encodePairFrame(pairs[1:])
	joined := append(append([]byte{}, *b1...), *b2...)
	putFrameBuf(b1)
	putFrameBuf(b2)
	got, err = decodePairFrames(joined, nil)
	if err != nil || len(got) != 3 {
		t.Fatalf("concat decode = (%d pairs, %v), want (3, nil)", len(got), err)
	}

	// Key-only frames refuse to decode as pairs.
	kb := encodeKeyFrame([]uint64{1, 2})
	if _, err := decodePairFrames(*kb, nil); err == nil {
		t.Fatal("decodePairFrames accepted a key-only frame")
	}
	putFrameBuf(kb)
}

func TestFrameHeaderRejectsGarbage(t *testing.T) {
	if _, _, err := parseFrameHeader([]byte("short")); err == nil {
		t.Fatal("short header accepted")
	}
	bad := make([]byte, frameHeaderSize)
	copy(bad, "NOPE")
	if _, _, err := parseFrameHeader(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bp := encodeKeyFrame([]uint64{1})
	(*bp)[4] = 99
	if _, _, err := parseFrameHeader(*bp); err == nil {
		t.Fatal("bad version accepted")
	}
	putFrameBuf(bp)
}

// TestSortedRunsMerge checks the external merge emits every record in
// global (key, value) order, across both the in-memory fast path and a
// genuinely spilled multi-run shape.
func TestSortedRunsMerge(t *testing.T) {
	for _, tc := range []struct {
		name   string
		budget int64
		n      int
	}{
		{"in-memory", 1 << 30, 5000},
		{"spilled", 1, 50000}, // budget floor => 1024-pair runs => ~48 runs
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := NewSortedRuns(t.TempDir(), tc.budget)
			defer r.Close()
			rng := rand.New(rand.NewSource(7))
			want := make([]Pair, tc.n)
			for i := range want {
				p := Pair{K: rng.Uint64() % 997, V: uint64(i)}
				want[i] = p
				if err := r.Add(p.K, p.V); err != nil {
					t.Fatal(err)
				}
			}
			sortPairs(want)
			var got []Pair
			if err := r.Merge(func(k, v uint64) error {
				got = append(got, Pair{K: k, V: v})
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("merged %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
				}
			}
			st := r.Stats()
			if tc.name == "spilled" && (st.Runs < 2 || st.Bytes == 0) {
				t.Fatalf("spilled case wrote %d runs / %d bytes, want >= 2 runs", st.Runs, st.Bytes)
			}
			if tc.name == "in-memory" && st.Runs != 0 {
				t.Fatalf("in-memory case wrote %d runs, want 0", st.Runs)
			}
		})
	}
}

// TestDiskSetMatchesMap drives a DiskSet with a tiny budget (forcing
// flushes and compaction) against a plain map reference.
func TestDiskSetMatchesMap(t *testing.T) {
	s := NewDiskSet(t.TempDir(), 1) // floor: 1024-entry delta
	defer s.Close()
	ref := make(map[uint64]struct{})
	rng := rand.New(rand.NewSource(11))

	const rounds = 100
	const batch = 512
	sigs := make([]uint64, batch)
	// novel starts dirty and is deliberately never cleared between
	// rounds: the streaming index partitions reuse scratch slices the same
	// way, so AddBatch must write every slot — a skipped duplicate slot
	// would leak the previous batch's verdict.
	novel := make([]bool, batch)
	for i := range novel {
		novel[i] = true
	}
	for round := 0; round < rounds; round++ {
		for i := range sigs {
			// Small key space so cross-batch duplicates are common.
			sigs[i] = rng.Uint64() % 12000
		}
		if err := s.AddBatch(sigs, novel); err != nil {
			t.Fatal(err)
		}
		for i, sig := range sigs {
			_, seen := ref[sig]
			if novel[i] == seen {
				t.Fatalf("round %d sig %d: novel=%v but previously seen=%v", round, sig, novel[i], seen)
			}
			ref[sig] = struct{}{}
		}
	}
	if s.Len() != len(ref) {
		t.Fatalf("Len() = %d, want %d", s.Len(), len(ref))
	}
	if st := s.Stats(); st.Runs < maxSetRuns+1 {
		t.Fatalf("expected flushes + compaction, got %d runs written", st.Runs)
	}
	// Spot-check membership probes after compaction.
	for sig := uint64(0); sig < 12000; sig += 13 {
		got, err := s.Contains(sig)
		if err != nil {
			t.Fatal(err)
		}
		_, want := ref[sig]
		if got != want {
			t.Fatalf("Contains(%d) = %v, want %v", sig, got, want)
		}
	}
}

// TestLSHPartitionsCoverAllRecords checks disk-partitioned tables hand
// back every record exactly once, sorted within each partition, and that
// the in-memory mode engages when the estimate fits.
func TestLSHPartitionsCoverAllRecords(t *testing.T) {
	const n = 20000
	l := NewLSH(t.TempDir(), n, 4096) // way under n*16 => disk mode
	defer l.Close()
	if !l.Spilled() {
		t.Fatal("expected disk mode for estimate >> budget")
	}
	for i := 0; i < n; i++ {
		if err := l.Add(uint64(i%513), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint64]uint64) // val -> key
	err := l.ForEachPartition(func(pairs []Pair) error {
		if !sort.SliceIsSorted(pairs, func(i, j int) bool {
			if pairs[i].K != pairs[j].K {
				return pairs[i].K < pairs[j].K
			}
			return pairs[i].V < pairs[j].V
		}) {
			t.Fatal("partition not sorted")
		}
		for _, p := range pairs {
			if _, dup := seen[p.V]; dup {
				t.Fatalf("value %d visited twice", p.V)
			}
			seen[p.V] = p.K
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("visited %d records, want %d", len(seen), n)
	}
	for v, k := range seen {
		if k != v%513 {
			t.Fatalf("value %d carried key %d, want %d", v, k, v%513)
		}
	}
	if st := l.Stats(); st.Runs == 0 || st.Bytes == 0 {
		t.Fatalf("disk mode reported no spill activity: %+v", st)
	}

	m := NewLSH(t.TempDir(), 10, 1<<20)
	if m.Spilled() {
		t.Fatal("tiny estimate should stay in memory")
	}
	m.Add(5, 1)
	m.Add(5, 0)
	var got []Pair
	m.ForEachPartition(func(pairs []Pair) error {
		got = append(got, pairs...)
		return nil
	})
	if len(got) != 2 || got[0] != (Pair{K: 5, V: 0}) || got[1] != (Pair{K: 5, V: 1}) {
		t.Fatalf("in-memory partition = %+v", got)
	}
	if st := m.Stats(); st.Runs != 0 || st.Bytes != 0 {
		t.Fatalf("in-memory mode reported spill activity: %+v", st)
	}
}
