package spill

import (
	"fmt"
	"io"
	"os"
	"sort"
)

const (
	// fenceInterval is how many keys each fence covers: probes read one
	// fenceInterval-sized block per candidate run.
	fenceInterval = 512
	// maxSetRuns triggers compaction: when this many runs accumulate they
	// are merged into one, keeping probe fan-out bounded.
	maxSetRuns = 8
	// deltaEntryBytes is the estimated in-memory cost of one key in the
	// delta map (bucket slot + overhead), used to size it from the budget.
	deltaEntryBytes = 48
)

// DiskSet is a disk-backed uint64 membership set with LSM-style levels:
// new keys land in a bounded in-memory delta map; when the delta reaches
// its budget it is sorted and flushed as an immutable key-only run with
// an in-memory fence index (every fenceInterval-th key). Probes check the
// delta, then each run via fence lookup + one block read. Runs are
// disjoint by construction — a key is only admitted to the delta after
// missing every run — so compaction is a simple k-way merge.
//
// DiskSet is not safe for concurrent use. The streaming engine gives each
// index partition its own DiskSet and serializes batches within a
// partition in stream order, so first-occurrence semantics hold without
// any locking here.
type DiskSet struct {
	dir      string
	budget   int64
	delta    map[uint64]struct{}
	maxDelta int
	runs     []*setRun

	scratch  []uint64 // sorted flush scratch, reused
	blockBuf []byte   // probe block read buffer, reused
	blockKey []uint64 // decoded probe block, reused

	counters
}

// setRun is one immutable sorted key-only run plus its fence index.
type setRun struct {
	path     string
	f        *os.File
	count    int
	fences   []uint64 // keys at indexes 0, fenceInterval, 2*fenceInterval, ...
	min, max uint64
}

// NewDiskSet creates a signature set bounded by budget bytes in dir. The
// directory is created on first flush, not up front.
func NewDiskSet(dir string, budget int64) *DiskSet {
	maxDelta := int(budget / deltaEntryBytes)
	if maxDelta < 1024 {
		maxDelta = 1024
	}
	return &DiskSet{
		dir:      dir,
		budget:   budget,
		delta:    make(map[uint64]struct{}),
		maxDelta: maxDelta,
	}
}

// AddBatch tests-and-inserts each signature in order, setting novel[i]
// true exactly when sigs[i] was not present before this call (first
// occurrence wins, including duplicates within the batch). Every slot
// of novel is written: callers reuse the slice across batches, so a
// skipped slot would leak the previous batch's verdict and let a
// duplicate through.
func (s *DiskSet) AddBatch(sigs []uint64, novel []bool) error {
	for i, sig := range sigs {
		if _, ok := s.delta[sig]; ok {
			novel[i] = false
			continue
		}
		hit, err := s.probeRuns(sig)
		if err != nil {
			return err
		}
		if hit {
			novel[i] = false
			continue
		}
		novel[i] = true
		s.delta[sig] = struct{}{}
		if len(s.delta) >= s.maxDelta {
			if err := s.flushDelta(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Contains reports membership without inserting.
func (s *DiskSet) Contains(sig uint64) (bool, error) {
	if _, ok := s.delta[sig]; ok {
		return true, nil
	}
	return s.probeRuns(sig)
}

// probeRuns checks every run, newest first.
func (s *DiskSet) probeRuns(sig uint64) (bool, error) {
	for i := len(s.runs) - 1; i >= 0; i-- {
		hit, err := s.probeRun(s.runs[i], sig)
		if err != nil {
			return false, err
		}
		if hit {
			return true, nil
		}
	}
	return false, nil
}

// probeRun fence-locates sig's candidate block and binary-searches it.
func (s *DiskSet) probeRun(r *setRun, sig uint64) (bool, error) {
	if r.count == 0 || sig < r.min || sig > r.max {
		return false, nil
	}
	// Greatest fence <= sig; fences[0] == r.min so idx >= 0 here.
	idx := sort.Search(len(r.fences), func(i int) bool { return r.fences[i] > sig }) - 1
	if idx < 0 {
		return false, nil
	}
	start := idx * fenceInterval
	n := r.count - start
	if n > fenceInterval {
		n = fenceInterval
	}
	if cap(s.blockBuf) < n*8 {
		s.blockBuf = make([]byte, n*8)
	}
	buf := s.blockBuf[:n*8]
	if _, err := r.f.ReadAt(buf, frameHeaderSize+int64(start)*8); err != nil {
		return false, fmt.Errorf("spill: probing %s: %w", r.path, err)
	}
	s.blockKey = decodeU64s(buf, s.blockKey[:0])
	keys := s.blockKey
	j := sort.Search(len(keys), func(i int) bool { return keys[i] >= sig })
	return j < len(keys) && keys[j] == sig, nil
}

// flushDelta sorts the delta and writes it as a new run.
func (s *DiskSet) flushDelta() error {
	if len(s.delta) == 0 {
		return nil
	}
	s.scratch = s.scratch[:0]
	for k := range s.delta {
		s.scratch = append(s.scratch, k)
	}
	sort.Slice(s.scratch, func(i, j int) bool { return s.scratch[i] < s.scratch[j] })
	if err := s.writeRun(s.scratch); err != nil {
		return err
	}
	clear(s.delta)
	if len(s.runs) >= maxSetRuns {
		return s.compact()
	}
	return nil
}

// writeRun persists sorted unique keys as one run and opens it for probes.
func (s *DiskSet) writeRun(keys []uint64) error {
	f, err := createRun(s.dir, "set-*.djs")
	if err != nil {
		return err
	}
	bp := encodeKeyFrame(keys)
	_, err = f.Write(*bp)
	n := int64(len(*bp))
	putFrameBuf(bp)
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	r := &setRun{path: f.Name(), f: f, count: len(keys), min: keys[0], max: keys[len(keys)-1]}
	for i := 0; i < len(keys); i += fenceInterval {
		r.fences = append(r.fences, keys[i])
	}
	s.runs = append(s.runs, r)
	s.account(n)
	return nil
}

// compact merges all runs into one. Runs hold disjoint key sets, so the
// merge is a plain k-way interleave of already-unique keys.
func (s *DiskSet) compact() error {
	var cursors []mergeCursor
	for _, r := range s.runs {
		rr, err := openSetRunReader(r)
		if err != nil {
			return err
		}
		cursors = append(cursors, rr)
	}
	var merged []uint64
	err := mergeCursors(cursors, func(k, _ uint64) error {
		merged = append(merged, k)
		return nil
	})
	for _, c := range cursors {
		c.close()
	}
	if err != nil {
		return err
	}
	old := s.runs
	s.runs = nil
	if err := s.writeRun(merged); err != nil {
		s.runs = old
		return err
	}
	for _, r := range old {
		r.f.Close()
		os.Remove(r.path)
	}
	return nil
}

// openSetRunReader adapts a key-only run to the merge cursor interface.
func openSetRunReader(r *setRun) (mergeCursor, error) {
	f, err := os.Open(r.path)
	if err != nil {
		return nil, err
	}
	return &setRunReader{f: f, count: r.count}, nil
}

type setRunReader struct {
	f     *os.File
	count int
	pos   int
	keys  []uint64
	i     int
	raw   []byte
}

func (r *setRunReader) next() (uint64, uint64, bool, error) {
	if r.i >= len(r.keys) {
		n := r.count - r.pos
		if n <= 0 {
			return 0, 0, false, nil
		}
		if n > runReaderBatch {
			n = runReaderBatch
		}
		if cap(r.raw) < n*8 {
			r.raw = make([]byte, n*8)
		}
		raw := r.raw[:n*8]
		if _, err := r.f.ReadAt(raw, frameHeaderSize+int64(r.pos)*8); err != nil && err != io.EOF {
			return 0, 0, false, err
		}
		r.keys = decodeU64s(raw, r.keys[:0])
		r.pos += n
		r.i = 0
	}
	k := r.keys[r.i]
	r.i++
	return k, 0, true, nil
}

func (r *setRunReader) close() { r.f.Close() }

// Stats reports runs and bytes written (compaction output included).
func (s *DiskSet) Stats() Stats { return s.snapshot() }

// Len returns how many distinct keys the set holds.
func (s *DiskSet) Len() int {
	n := len(s.delta)
	for _, r := range s.runs {
		n += r.count
	}
	return n
}

// Close releases file handles and removes all run files.
func (s *DiskSet) Close() error {
	for _, r := range s.runs {
		r.f.Close()
		os.Remove(r.path)
	}
	s.runs = nil
	s.delta = nil
	return nil
}
