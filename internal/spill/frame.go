package spill

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Frame layout (all little-endian):
//
//	offset 0   magic "DJS1"
//	offset 4   version (1)
//	offset 5   flags (bit 0: values column present)
//	offset 6   reserved (2 bytes, zero)
//	offset 8   record count (uint32)
//	offset 12  reserved (4 bytes, zero)
//	offset 16  keys column: count x uint64
//	...        values column: count x uint64 (only if flag bit 0)
//
// Columns rather than interleaved records keep merge readers sequential
// per column and let key-only structures (the signature set) skip the
// value column entirely.
const (
	frameHeaderSize = 16
	frameVersion    = 1
	flagHasVals     = 1 << 0
)

var frameMagic = [4]byte{'D', 'J', 'S', '1'}

// framePool recycles encode/decode scratch buffers.
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// GetFrameBuf returns a pooled byte buffer resliced to n bytes. It backs
// the spill codec's own frames and is shared with the dist wire codec,
// which reuses the same pool for its column scratch. Pair every call
// with PutFrameBuf.
func GetFrameBuf(n int) *[]byte {
	bp := framePool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// PutFrameBuf returns a buffer obtained from GetFrameBuf to the pool.
func PutFrameBuf(bp *[]byte) { framePool.Put(bp) }

func getFrameBuf(n int) *[]byte { return GetFrameBuf(n) }
func putFrameBuf(bp *[]byte)    { PutFrameBuf(bp) }

// frameSize returns the encoded size of a frame holding count records.
func frameSize(count int, withVals bool) int {
	n := frameHeaderSize + count*8
	if withVals {
		n += count * 8
	}
	return n
}

// putFrameHeader writes the 16-byte header into buf.
func putFrameHeader(buf []byte, count int, withVals bool) {
	copy(buf[0:4], frameMagic[:])
	buf[4] = frameVersion
	if withVals {
		buf[5] = flagHasVals
	} else {
		buf[5] = 0
	}
	buf[6], buf[7] = 0, 0
	binary.LittleEndian.PutUint32(buf[8:12], uint32(count))
	for i := 12; i < frameHeaderSize; i++ {
		buf[i] = 0
	}
}

// parseFrameHeader validates buf's header and returns the record count
// and whether a values column follows the keys column.
func parseFrameHeader(buf []byte) (count int, withVals bool, err error) {
	if len(buf) < frameHeaderSize {
		return 0, false, fmt.Errorf("spill: short frame header (%d bytes)", len(buf))
	}
	if [4]byte(buf[0:4]) != frameMagic {
		return 0, false, fmt.Errorf("spill: bad frame magic %q", buf[0:4])
	}
	if buf[4] != frameVersion {
		return 0, false, fmt.Errorf("spill: unsupported frame version %d", buf[4])
	}
	count = int(binary.LittleEndian.Uint32(buf[8:12]))
	withVals = buf[5]&flagHasVals != 0
	return count, withVals, nil
}

// encodePairFrame encodes pairs as a key+value frame into a pooled
// buffer. The caller must putFrameBuf the returned buffer after writing.
func encodePairFrame(pairs []Pair) *[]byte {
	bp := getFrameBuf(frameSize(len(pairs), true))
	buf := *bp
	putFrameHeader(buf, len(pairs), true)
	keyOff := frameHeaderSize
	valOff := keyOff + len(pairs)*8
	for i, p := range pairs {
		binary.LittleEndian.PutUint64(buf[keyOff+i*8:], p.K)
		binary.LittleEndian.PutUint64(buf[valOff+i*8:], p.V)
	}
	return bp
}

// encodeKeyFrame encodes keys as a key-only frame into a pooled buffer.
func encodeKeyFrame(keys []uint64) *[]byte {
	bp := getFrameBuf(frameSize(len(keys), false))
	buf := *bp
	putFrameHeader(buf, len(keys), false)
	for i, k := range keys {
		binary.LittleEndian.PutUint64(buf[frameHeaderSize+i*8:], k)
	}
	return bp
}

// decodePairFrames parses a concatenation of key+value frames, appending
// every record to into.
func decodePairFrames(data []byte, into []Pair) ([]Pair, error) {
	for len(data) > 0 {
		count, withVals, err := parseFrameHeader(data)
		if err != nil {
			return into, err
		}
		if !withVals {
			return into, fmt.Errorf("spill: key-only frame where pairs expected")
		}
		size := frameSize(count, true)
		if len(data) < size {
			return into, fmt.Errorf("spill: truncated frame (%d < %d bytes)", len(data), size)
		}
		keyOff := frameHeaderSize
		valOff := keyOff + count*8
		for i := 0; i < count; i++ {
			into = append(into, Pair{
				K: binary.LittleEndian.Uint64(data[keyOff+i*8:]),
				V: binary.LittleEndian.Uint64(data[valOff+i*8:]),
			})
		}
		data = data[size:]
	}
	return into, nil
}

// decodeU64s decodes n little-endian uint64s from buf into out.
func decodeU64s(buf []byte, out []uint64) []uint64 {
	for i := 0; i+8 <= len(buf); i += 8 {
		out = append(out, binary.LittleEndian.Uint64(buf[i:]))
	}
	return out
}
