package spill

import (
	"fmt"
	"os"
	"sync"
)

const (
	maxPartitions = 4096
	minPartitions = 2
)

// LSH is a bucket table for locality-sensitive-hash candidate
// generation: callers Add (bucketKey, docIndex) records during the
// feature pass, then ForEachPartition visits every partition's records
// sorted by (key, value) so consecutive equal keys form the candidate
// groups. When the caller's upfront record estimate fits the budget the
// whole table stays in one in-memory partition; otherwise records are
// hash-partitioned across append-only files so no more than one
// partition (~budget/2 bytes) is resident at a time.
//
// Add is safe for concurrent use; ForEachPartition is not, and must run
// after all Adds complete.
type LSH struct {
	dir    string
	budget int64

	// In-memory mode.
	memMode bool
	memMu   sync.Mutex
	mem     []Pair

	// Disk mode.
	parts []*lshPart

	counters
}

// lshPart is one append-only partition file plus its write buffer.
type lshPart struct {
	mu    sync.Mutex
	buf   []Pair
	maxBf int
	f     *os.File
	path  string
	count int
}

// NewLSH sizes the table for expectedRecords records under budget bytes.
// Partition count is chosen so one fully-loaded partition stays around
// half the budget, leaving headroom for the caller's sort and grouping.
func NewLSH(dir string, expectedRecords, budget int64) *LSH {
	l := &LSH{dir: dir, budget: budget}
	if budget <= 0 || expectedRecords*pairBytes <= budget {
		l.memMode = true
		return l
	}
	half := budget / 2
	if half < pairBytes {
		half = pairBytes
	}
	p := (expectedRecords*pairBytes + half - 1) / half
	if p < minPartitions {
		p = minPartitions
	}
	if p > maxPartitions {
		p = maxPartitions
	}
	// Per-partition write buffer: keep the buffers' combined footprint
	// around a quarter of the budget, floor 256 records (4 KiB).
	maxBf := int(budget / 4 / pairBytes / p)
	if maxBf < 256 {
		maxBf = 256
	}
	l.parts = make([]*lshPart, p)
	for i := range l.parts {
		l.parts[i] = &lshPart{maxBf: maxBf}
	}
	return l
}

// Spilled reports whether the table went to disk.
func (l *LSH) Spilled() bool { return !l.memMode }

// Add inserts one (bucketKey, docIndex) record.
func (l *LSH) Add(key, val uint64) error {
	if l.memMode {
		l.memMu.Lock()
		l.mem = append(l.mem, Pair{K: key, V: val})
		l.memMu.Unlock()
		return nil
	}
	p := l.parts[mix(key)%uint64(len(l.parts))]
	p.mu.Lock()
	p.buf = append(p.buf, Pair{K: key, V: val})
	var err error
	if len(p.buf) >= p.maxBf {
		err = l.flushPart(p)
	}
	p.mu.Unlock()
	return err
}

// flushPart appends the buffer as one frame to the partition file.
// Caller holds p.mu.
func (l *LSH) flushPart(p *lshPart) error {
	if len(p.buf) == 0 {
		return nil
	}
	if p.f == nil {
		f, err := createRun(l.dir, "lsh-*.djs")
		if err != nil {
			return err
		}
		p.f, p.path = f, f.Name()
	}
	bp := encodePairFrame(p.buf)
	_, err := p.f.Write(*bp)
	n := int64(len(*bp))
	putFrameBuf(bp)
	if err != nil {
		return err
	}
	p.count += len(p.buf)
	p.buf = p.buf[:0]
	l.bytes.Add(n)
	return nil
}

// ForEachPartition loads each partition, sorts its records by
// (key, value), and hands the sorted slice to fn. The slice is reused
// across partitions; fn must not retain it.
func (l *LSH) ForEachPartition(fn func(pairs []Pair) error) error {
	if l.memMode {
		sortPairs(l.mem)
		if len(l.mem) == 0 {
			return nil
		}
		return fn(l.mem)
	}
	var pairs []Pair
	for _, p := range l.parts {
		p.mu.Lock()
		err := l.flushPart(p)
		p.mu.Unlock()
		if err != nil {
			return err
		}
		if p.count == 0 {
			continue
		}
		l.runs.Add(1) // one materialized partition == one spill run
		data, err := os.ReadFile(p.path)
		if err != nil {
			return err
		}
		pairs, err = decodePairFrames(data, pairs[:0])
		if err != nil {
			return fmt.Errorf("spill: partition %s: %w", p.path, err)
		}
		if len(pairs) != p.count {
			return fmt.Errorf("spill: partition %s holds %d records, expected %d",
				p.path, len(pairs), p.count)
		}
		sortPairs(pairs)
		if err := fn(pairs); err != nil {
			return err
		}
	}
	return nil
}

// Stats reports partitions materialized and bytes written.
func (l *LSH) Stats() Stats { return l.snapshot() }

// Close removes every partition file.
func (l *LSH) Close() error {
	for _, p := range l.parts {
		if p.f != nil {
			p.f.Close()
			os.Remove(p.path)
			p.f = nil
		}
	}
	l.mem = nil
	return nil
}
