package spill

import (
	"container/heap"
	"fmt"
	"io"
	"os"
	"sort"
)

// SortedRuns is the classic external-sort building block: Add buffers
// (key, value) records until the in-memory buffer reaches the byte
// budget, then sorts it by (key, value) and flushes it to a run file.
// Merge streams all runs plus the in-memory tail through a k-way heap
// merge, emitting records in globally sorted order. When nothing ever
// spilled, Merge degenerates to a single in-memory sort.
type SortedRuns struct {
	dir    string
	budget int64

	buf    []Pair
	maxBuf int
	files  []string

	counters
}

// pairBytes is the in-memory footprint of one buffered Pair.
const pairBytes = 16

// NewSortedRuns creates a run writer bounded by budget bytes. A zero or
// negative budget still works: the buffer floor keeps runs non-degenerate.
func NewSortedRuns(dir string, budget int64) *SortedRuns {
	maxBuf := int(budget / pairBytes)
	if maxBuf < 1024 {
		maxBuf = 1024
	}
	return &SortedRuns{dir: dir, budget: budget, maxBuf: maxBuf}
}

// Add buffers one record, flushing a sorted run when the buffer is full.
func (r *SortedRuns) Add(k, v uint64) error {
	r.buf = append(r.buf, Pair{K: k, V: v})
	if len(r.buf) >= r.maxBuf {
		return r.flush()
	}
	return nil
}

func sortPairs(pairs []Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].K != pairs[j].K {
			return pairs[i].K < pairs[j].K
		}
		return pairs[i].V < pairs[j].V
	})
}

// flush sorts the buffer and writes it as one frame to a new run file.
func (r *SortedRuns) flush() error {
	if len(r.buf) == 0 {
		return nil
	}
	sortPairs(r.buf)
	f, err := createRun(r.dir, "run-*.djs")
	if err != nil {
		return err
	}
	bp := encodePairFrame(r.buf)
	_, err = f.Write(*bp)
	n := int64(len(*bp))
	putFrameBuf(bp)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	r.files = append(r.files, f.Name())
	r.account(n)
	r.buf = r.buf[:0]
	return nil
}

// Merge emits every added record in ascending (key, value) order. It may
// be called once; the run files are consumed but only removed by Close.
func (r *SortedRuns) Merge(emit func(k, v uint64) error) error {
	sortPairs(r.buf)
	if len(r.files) == 0 {
		for _, p := range r.buf {
			if err := emit(p.K, p.V); err != nil {
				return err
			}
		}
		return nil
	}
	var cursors []mergeCursor
	defer func() {
		for _, c := range cursors {
			c.close()
		}
	}()
	for _, path := range r.files {
		rr, err := openRunReader(path)
		if err != nil {
			return err
		}
		cursors = append(cursors, rr)
	}
	if len(r.buf) > 0 {
		cursors = append(cursors, &memCursor{pairs: r.buf})
	}
	return mergeCursors(cursors, emit)
}

// Stats reports runs and bytes written so far.
func (r *SortedRuns) Stats() Stats { return r.snapshot() }

// Close removes all run files.
func (r *SortedRuns) Close() error {
	removeAll(r.files)
	r.files = nil
	r.buf = nil
	return nil
}

// mergeCursor is one sorted input to the k-way merge.
type mergeCursor interface {
	// next advances and returns the next record; ok=false at EOF.
	next() (k, v uint64, ok bool, err error)
	close()
}

// memCursor walks an already-sorted in-memory slice.
type memCursor struct {
	pairs []Pair
	i     int
}

func (c *memCursor) next() (uint64, uint64, bool, error) {
	if c.i >= len(c.pairs) {
		return 0, 0, false, nil
	}
	p := c.pairs[c.i]
	c.i++
	return p.K, p.V, true, nil
}

func (c *memCursor) close() {}

// runReaderBatch is how many records a run reader loads per column read:
// two 32 KiB sequential reads, independent of the run size.
const runReaderBatch = 4096

// runReader streams one run file's columns in fixed-size batches so the
// merge holds O(batch x runs) records in memory, not the whole runs.
type runReader struct {
	f              *os.File
	count          int
	keyOff, valOff int64
	pos            int // absolute record index of the next batch
	keys, vals     []uint64
	i              int // cursor within the loaded batch
	raw            []byte
}

func openRunReader(path string) (*runReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("spill: reading run header %s: %w", path, err)
	}
	count, withVals, err := parseFrameHeader(hdr[:])
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("spill: %s: %w", path, err)
	}
	if !withVals {
		f.Close()
		return nil, fmt.Errorf("spill: run %s missing value column", path)
	}
	return &runReader{
		f:      f,
		count:  count,
		keyOff: frameHeaderSize,
		valOff: frameHeaderSize + int64(count)*8,
	}, nil
}

func (r *runReader) loadBatch() error {
	n := r.count - r.pos
	if n <= 0 {
		return io.EOF
	}
	if n > runReaderBatch {
		n = runReaderBatch
	}
	if cap(r.raw) < n*8 {
		r.raw = make([]byte, n*8)
	}
	raw := r.raw[:n*8]
	if _, err := r.f.ReadAt(raw, r.keyOff+int64(r.pos)*8); err != nil {
		return err
	}
	r.keys = decodeU64s(raw, r.keys[:0])
	if _, err := r.f.ReadAt(raw, r.valOff+int64(r.pos)*8); err != nil {
		return err
	}
	r.vals = decodeU64s(raw, r.vals[:0])
	r.pos += n
	r.i = 0
	return nil
}

func (r *runReader) next() (uint64, uint64, bool, error) {
	if r.i >= len(r.keys) {
		switch err := r.loadBatch(); err {
		case nil:
		case io.EOF:
			return 0, 0, false, nil
		default:
			return 0, 0, false, err
		}
	}
	k, v := r.keys[r.i], r.vals[r.i]
	r.i++
	return k, v, true, nil
}

func (r *runReader) close() { r.f.Close() }

// mergeHeap orders cursor heads by (key, value).
type mergeHead struct {
	k, v uint64
	c    mergeCursor
}

type mergeHeap []mergeHead

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].k != h[j].k {
		return h[i].k < h[j].k
	}
	return h[i].v < h[j].v
}
func (h mergeHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)      { *h = append(*h, x.(mergeHead)) }
func (h *mergeHeap) Pop() any        { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h mergeHeap) peek() *mergeHead { return &h[0] }

// mergeCursors runs the k-way heap merge over the cursors, emitting every
// record in ascending (key, value) order.
func mergeCursors(cursors []mergeCursor, emit func(k, v uint64) error) error {
	h := make(mergeHeap, 0, len(cursors))
	for _, c := range cursors {
		k, v, ok, err := c.next()
		if err != nil {
			return err
		}
		if ok {
			h = append(h, mergeHead{k: k, v: v, c: c})
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		head := h.peek()
		if err := emit(head.k, head.v); err != nil {
			return err
		}
		k, v, ok, err := head.c.next()
		if err != nil {
			return err
		}
		if ok {
			head.k, head.v = k, v
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return nil
}
