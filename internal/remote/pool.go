package remote

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/plan"
	"repro/internal/telemetry"
)

// DefaultStageTimeout bounds one stage request end-to-end. A worker
// that hangs past it is treated exactly like one that crashed.
const DefaultStageTimeout = 2 * time.Minute

// readyTimeout bounds how long a spawned worker may take to print its
// ready line and answer healthz.
const readyTimeout = 15 * time.Second

// PoolOptions configures the coordinator's worker fleet.
type PoolOptions struct {
	// Workers spawns this many djworker subprocesses (ignored when
	// Addrs is set).
	Workers int
	// Addrs connects to already-running workers instead of spawning.
	Addrs []string
	// WorkerBin is the djworker binary to spawn (default: "djworker"
	// next to the running binary, falling back to $PATH).
	WorkerBin string
	// WorkDir is the coordinator's work directory; spawned worker W
	// gets <WorkDir>/workers/w<W> as its own.
	WorkDir string
	// StageTimeout bounds one stage request (DefaultStageTimeout when
	// zero).
	StageTimeout time.Duration
	// Env appends extra environment entries to spawned workers, after
	// the DJ_FAULT scrubbing described in fault.go (test hook).
	Env []string
	// MaxProto caps the wire version the coordinator offers at
	// configure time (0 means everything it speaks). Benchmarks and
	// tests pin 1 here to measure/emulate a v1 exchange.
	MaxProto int
}

// Pool is the coordinator's handle on the worker fleet: it owns the
// subprocesses, the routing scheduler, and the journal events that
// record fleet activity.
type Pool struct {
	sched    *dist.Scheduler
	procs    []*exec.Cmd
	timeout  time.Duration
	runID    string
	tele     *telemetry.Run
	maxProto int

	// Stage routing hints derived at configure time: per plan node,
	// whether it is a pure filter (keep-mask delta eligible), and
	// whether frames should be lzj-compressed.
	filterOnly []bool
	compress   bool

	// Wire accounting, accumulated per completed stage exchange.
	wmu         sync.Mutex
	wire        map[int]*wireAgg
	wireFlushed bool
}

// wireAgg sums one worker's completed stage exchanges.
type wireAgg struct {
	proto       int
	deltaStages int
	sent        int64
	recv        int64
	rawSent     int64
	rawRecv     int64
}

// NewPool spawns (or dials) the fleet and waits for every worker to
// answer healthz. On any startup failure the whole fleet is torn down.
func NewPool(opts PoolOptions) (*Pool, error) {
	timeout := opts.StageTimeout
	if timeout <= 0 {
		timeout = DefaultStageTimeout
	}
	maxProto := opts.MaxProto
	if maxProto <= 0 || maxProto > dist.MaxProtoVersion {
		maxProto = dist.MaxProtoVersion
	}
	p := &Pool{timeout: timeout, maxProto: maxProto, wire: map[int]*wireAgg{}}

	var clients []*dist.WorkerClient
	if len(opts.Addrs) > 0 {
		for i, addr := range opts.Addrs {
			clients = append(clients, dist.NewWorkerClient(i+1, addr, timeout))
		}
	} else {
		if opts.Workers <= 0 {
			return nil, fmt.Errorf("remote: no workers requested")
		}
		bin := opts.WorkerBin
		if bin == "" {
			bin = siblingBinary("djworker")
		}
		for i := 1; i <= opts.Workers; i++ {
			addr, cmd, err := p.spawn(bin, i, opts)
			if err != nil {
				p.Close()
				return nil, fmt.Errorf("remote: worker %d: %w", i, err)
			}
			p.procs = append(p.procs, cmd)
			clients = append(clients, dist.NewWorkerClient(i, addr, timeout))
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), readyTimeout)
	defer cancel()
	for _, c := range clients {
		if err := waitHealthy(ctx, c); err != nil {
			p.Close()
			return nil, err
		}
	}
	p.sched = dist.NewScheduler(clients)
	return p, nil
}

// siblingBinary looks for name next to the running executable, falling
// back to $PATH resolution by bare name.
func siblingBinary(name string) string {
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), name)
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return cand
		}
	}
	return name
}

// spawn starts one djworker with an OS-assigned port and parses its
// "ready <addr>" stdout line. The child environment is scrubbed of
// DJ_FAULT; a per-worker DJ_FAULT_W<id> is forwarded as the child's
// DJ_FAULT so chaos tests can aim a fault at one fleet member.
func (p *Pool) spawn(bin string, id int, opts PoolOptions) (string, *exec.Cmd, error) {
	workDir := filepath.Join(opts.WorkDir, "workers", fmt.Sprintf("w%d", id))
	cmd := exec.Command(bin, "-id", fmt.Sprint(id), "-listen", "127.0.0.1:0", "-work-dir", workDir)
	perWorker := fmt.Sprintf("DJ_FAULT_W%d=", id)
	var env []string
	for _, kv := range os.Environ() {
		if strings.HasPrefix(kv, "DJ_FAULT=") || strings.HasPrefix(kv, "DJ_FAULT_W") {
			if strings.HasPrefix(kv, perWorker) {
				env = append(env, "DJ_FAULT="+kv[len(perWorker):])
			}
			continue
		}
		env = append(env, kv)
	}
	for _, kv := range opts.Env {
		if strings.HasPrefix(kv, perWorker) {
			env = append(env, "DJ_FAULT="+kv[len(perWorker):])
			continue
		}
		if strings.HasPrefix(kv, "DJ_FAULT_W") {
			continue
		}
		env = append(env, kv)
	}
	cmd.Env = env
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "ready "); ok {
				addrCh <- strings.TrimSpace(rest)
				break
			}
		}
		close(addrCh)
		// Keep draining so the child never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			cmd.Process.Kill()
			return "", cmd, fmt.Errorf("exited before printing ready line")
		}
		return addr, cmd, nil
	case <-time.After(readyTimeout):
		cmd.Process.Kill()
		return "", cmd, fmt.Errorf("no ready line within %s", readyTimeout)
	}
}

func waitHealthy(ctx context.Context, c *dist.WorkerClient) error {
	for {
		err := c.Healthz(ctx)
		if err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("remote: worker %d (%s) never became healthy: %w", c.ID, c.Addr, err)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Configure ships the recipe, the planner's measured profiles and the
// plan fingerprint to every worker, and journals one worker_start per
// fleet member. A worker that explicitly rejects the configure fails
// the run — a fingerprint mismatch means distributed execution would
// not be byte-identical, which is never worth degrading into silently.
// A worker that merely became unreachable since its health check is
// marked dead (journaled as a retry) and the rest of the fleet carries
// its load; only a fully unreachable fleet fails.
func (p *Pool) Configure(r *config.Recipe, pl *plan.Plan, runID string, tele *telemetry.Run) error {
	p.runID, p.tele = runID, tele
	p.compress = r.DistCompress
	p.filterOnly = make([]bool, len(pl.Nodes))
	for i := range pl.Nodes {
		p.filterOnly[i] = core.OpKind(pl.Nodes[i].Op) == "filter"
	}
	rawRecipe, err := json.Marshal(r)
	if err != nil {
		return err
	}
	var profiles []dist.StoredProfile
	if pl.ProfilePath != "" {
		if set, err := dist.LoadProfiles(pl.ProfilePath); err == nil {
			profiles = set.Export()
		}
	}
	req := dist.ConfigureRequest{
		Proto: dist.ProtoVersion, MaxProto: p.maxProto, RunID: runID, Recipe: rawRecipe,
		Profiles: profiles, Fingerprint: PlanFingerprint(pl),
	}
	configured := 0
	for _, c := range p.sched.Clients() {
		resp, err := c.Configure(req)
		if err != nil {
			var rej *dist.RejectError
			if errors.As(err, &rej) {
				return err
			}
			p.sched.Fail(c)
			if tele != nil {
				tele.Emit(telemetry.Event{
					Type: telemetry.EvWorkerRetry, Worker: c.ID, Why: err.Error(),
				})
			}
			continue
		}
		// Old workers answer without a proto (0); SetProto clamps that
		// to v1 and caps anything newer at what this coordinator speaks.
		c.SetProto(resp.Proto)
		configured++
		if tele != nil {
			tele.Emit(telemetry.Event{
				Type: telemetry.EvWorkerStart, Parent: tele.RunSpan(),
				Worker: c.ID, Addr: c.Addr, Proto: c.Proto(),
			})
		}
	}
	if configured == 0 {
		return fmt.Errorf("remote: no worker accepted the configure: %w", dist.ErrNoWorkers)
	}
	return nil
}

// RunStage routes one shard-local stage [fromOp, toOp) for one shard:
// home-affine scheduling, steals journaled as shard_steal, failed
// attempts journaled as worker_retry and retried on surviving workers.
// When the whole fleet is dead it returns dist.ErrNoWorkers and the
// caller executes the stage in-process — same ops, same order, same
// bytes.
func (p *Pool) RunStage(shard, fromOp, toOp int, d *dataset.Dataset) (*dataset.Dataset, []dist.OpFlow, int, error) {
	h := dist.RunHeader{
		RunID: p.runID, Shard: shard, FromOp: fromOp, ToOp: toOp,
		Delta: p.deltaEligible(fromOp, toOp), Compress: p.compress,
	}
	for {
		route := p.sched.Pick(shard)
		if route.Worker == nil {
			return nil, nil, 0, dist.ErrNoWorkers
		}
		if route.Stolen && p.tele != nil {
			p.tele.Emit(telemetry.Event{
				Type: telemetry.EvShardSteal, Worker: route.Worker.ID,
				Shard: shard, Why: route.Why,
			})
		}
		out, rh, ws, err := route.Worker.RunStage(h, d)
		if err != nil {
			p.sched.Fail(route.Worker)
			if p.tele != nil {
				p.tele.Emit(telemetry.Event{
					Type: telemetry.EvWorkerRetry, Worker: route.Worker.ID,
					Shard: shard, Why: err.Error(),
				})
			}
			continue
		}
		p.sched.Done(route.Worker)
		p.observeWire(route.Worker.ID, ws)
		return out, rh.Flows, route.Worker.ID, nil
	}
}

// deltaEligible reports whether every plan node in [fromOp, toOp) is a
// pure filter, making the stage a keep-mask delta candidate.
func (p *Pool) deltaEligible(fromOp, toOp int) bool {
	if fromOp < 0 || toOp > len(p.filterOnly) || fromOp >= toOp {
		return false
	}
	for i := fromOp; i < toOp; i++ {
		if !p.filterOnly[i] {
			return false
		}
	}
	return true
}

// observeWire folds one completed stage exchange into the per-worker
// accounting and the live metrics counters.
func (p *Pool) observeWire(worker int, ws dist.WireStat) {
	p.wmu.Lock()
	agg := p.wire[worker]
	if agg == nil {
		agg = &wireAgg{}
		p.wire[worker] = agg
	}
	agg.proto = max(agg.proto, ws.Proto)
	agg.sent += ws.Sent
	agg.recv += ws.Recv
	agg.rawSent += ws.RawSent
	agg.rawRecv += ws.RawRecv
	if ws.Delta {
		agg.deltaStages++
	}
	p.wmu.Unlock()
	if p.tele != nil {
		p.tele.ObserveWire(worker, ws.Sent, ws.Recv, ws.RawSent, ws.RawRecv)
	}
}

// DistStats snapshots the fleet's run statistics for the report,
// including the wire accounting, and journals one worker_wire event per
// worker the first time it runs (the stream engine calls it once, after
// the last stage).
func (p *Pool) DistStats() *dist.RunStats {
	st := p.sched.Stats()
	p.wmu.Lock()
	defer p.wmu.Unlock()
	for i := range st.Workers {
		agg := p.wire[st.Workers[i].Worker]
		if agg == nil {
			continue
		}
		st.Workers[i].Proto = agg.proto
		st.Workers[i].DeltaStages = agg.deltaStages
		st.Workers[i].BytesSent = agg.sent
		st.Workers[i].BytesRecv = agg.recv
		st.Workers[i].RawBytesSent = agg.rawSent
		st.Workers[i].RawBytesRecv = agg.rawRecv
		st.DeltaStages += agg.deltaStages
		st.BytesSent += agg.sent
		st.BytesRecv += agg.recv
		st.RawBytesSent += agg.rawSent
		st.RawBytesRecv += agg.rawRecv
		if p.tele != nil && !p.wireFlushed {
			p.tele.Emit(telemetry.Event{
				Type: telemetry.EvWorkerWire, Worker: st.Workers[i].Worker,
				Proto: agg.proto, DeltaStages: agg.deltaStages,
				BytesSent: agg.sent, BytesRecv: agg.recv,
				RawBytesSent: agg.rawSent, RawBytesRecv: agg.rawRecv,
			})
		}
	}
	p.wireFlushed = true
	return &st
}

// FinishMembers flushes every surviving worker and returns the summed
// fused-member attribution across the fleet, in plan order. Workers
// that died mid-run lose their member counts — the coordinator's
// retries re-executed their shards elsewhere, so flow totals stay
// correct; only the per-member duration split loses the dead worker's
// share.
func (p *Pool) FinishMembers() []dist.MemberFlow {
	type key struct {
		planIdx int
		name    string
	}
	sums := map[key]*dist.MemberFlow{}
	var order []key
	for _, c := range p.sched.Live() {
		resp, err := c.Flush(p.runID)
		if err != nil {
			continue
		}
		for _, m := range resp.Members {
			k := key{m.PlanIdx, m.Name}
			if cur, ok := sums[k]; ok {
				cur.In += m.In
				cur.Out += m.Out
				cur.Samples += m.Samples
				cur.DurNS += m.DurNS
			} else {
				mc := m
				sums[k] = &mc
				order = append(order, k)
			}
		}
	}
	out := make([]dist.MemberFlow, 0, len(order))
	for _, k := range order {
		out = append(out, *sums[k])
	}
	return out
}

// Close tears the fleet down: SIGTERM, a short grace period, then
// SIGKILL. Dialed (non-spawned) workers are left running.
func (p *Pool) Close() {
	for _, cmd := range p.procs {
		if cmd.Process != nil {
			cmd.Process.Signal(syscall.SIGTERM)
		}
	}
	deadline := time.After(3 * time.Second)
	done := make(chan struct{})
	go func() {
		for _, cmd := range p.procs {
			cmd.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-deadline:
		for _, cmd := range p.procs {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
		<-done
	}
}
