package remote

import (
	"fmt"
	"strconv"
	"strings"
)

// Fault injection for the chaos test harness. A djworker started with
// DJ_FAULT set misbehaves on exactly one /v1/run request — the After-th
// one it serves (0-indexed) — in one of three ways:
//
//	crash    exit(137) before responding, like a kill -9 mid-stage
//	hang     never respond; the coordinator's request timeout fires
//	corrupt  answer 200 OK with garbage bytes instead of a frame
//
// The spec grammar is "<mode>" or "<mode>:after=<n>" (default n = 0),
// e.g. DJ_FAULT=crash:after=2. The coordinator's worker spawner scrubs
// DJ_FAULT from child environments so a fault aimed at the test process
// never leaks into the fleet; per-worker faults are addressed with
// DJ_FAULT_W<id> instead (see pool.go).
type Fault struct {
	Mode  string // "" (none) | "crash" | "hang" | "corrupt"
	After int    // which /v1/run request (0-indexed) triggers it
}

// Active reports whether a fault is armed.
func (f Fault) Active() bool { return f.Mode != "" }

// ParseFault parses a DJ_FAULT spec. The empty string is no fault.
func ParseFault(spec string) (Fault, error) {
	if spec == "" {
		return Fault{}, nil
	}
	mode, rest, _ := strings.Cut(spec, ":")
	f := Fault{Mode: mode}
	switch mode {
	case "crash", "hang", "corrupt":
	default:
		return Fault{}, fmt.Errorf("remote: unknown fault mode %q", mode)
	}
	if rest != "" {
		k, v, ok := strings.Cut(rest, "=")
		if !ok || k != "after" {
			return Fault{}, fmt.Errorf("remote: bad fault option %q (want after=<n>)", rest)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return Fault{}, fmt.Errorf("remote: bad fault trigger %q", v)
		}
		f.After = n
	}
	return f, nil
}
