// Package remote is the executor glue of the multi-process runtime: the
// djworker-side HTTP server that applies shard-local plan ops to shards
// shipped by a coordinator, and the coordinator-side worker pool that
// spawns/dials workers, routes stages through the dist scheduler, and
// folds worker measurements back into the run's journal and report.
//
// The wire protocol itself (frames, endpoints, validation) lives in
// internal/dist; this package supplies the execution behind it. Both
// processes build the physical plan independently from the same recipe
// and measured profiles and verify they agree on a plan fingerprint, so
// a version- or sidecar-skewed worker is rejected at configure time
// instead of silently producing different outputs.
package remote

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/plan"
	"repro/internal/telemetry"
)

// PlanFingerprint condenses the parts of a physical plan that must
// agree between coordinator and worker for distributed execution to be
// byte-identical to local: per node, the op name, its capability class,
// and its phase. Costs and provenance are deliberately excluded — they
// vary run to run without changing what executes.
func PlanFingerprint(p *plan.Plan) string {
	h := fnv.New64a()
	for i := range p.Nodes {
		n := &p.Nodes[i]
		fmt.Fprintf(h, "%s|%d|%d\x00", n.Op.Name(), n.Capability, n.Phase)
	}
	return fmt.Sprintf("%d:%016x", len(p.Nodes), h.Sum64())
}

// session is one configured run on a worker.
type session struct {
	runID  string
	plan   *plan.Plan
	runner *core.OpRunner
	tele   *telemetry.Run
}

// WorkerServer serves one djworker process: configure once per run,
// then any number of concurrent /v1/run stage requests.
type WorkerServer struct {
	// ID is the worker's 1-based fleet position (journal lane).
	ID int
	// WorkDir is the worker's private work directory; its journal lives
	// under <WorkDir>/journal.
	WorkDir string
	// Fault is the armed fault injection (zero = healthy).
	Fault Fault
	// MaxProto caps the wire version this worker negotiates (0 means
	// everything it speaks). Capping at 1 emulates an old fleet member:
	// /v2/run is not even registered.
	MaxProto int

	mu   sync.Mutex
	runs int // run requests served (both versions), for the fault trigger
	sess *session
}

func (w *WorkerServer) maxProto() int {
	if w.MaxProto <= 0 || w.MaxProto > dist.MaxProtoVersion {
		return dist.MaxProtoVersion
	}
	return w.MaxProto
}

// Handler returns the worker's HTTP mux.
func (w *WorkerServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", w.handleHealthz)
	mux.HandleFunc("/v1/configure", w.handleConfigure)
	mux.HandleFunc("/v1/run", w.handleRun)
	mux.HandleFunc("/v1/flush", w.handleFlush)
	if w.maxProto() >= dist.ProtoV2 {
		mux.HandleFunc("/v2/run", w.handleRunV2)
	}
	return mux
}

func (w *WorkerServer) handleHealthz(rw http.ResponseWriter, _ *http.Request) {
	rw.Write([]byte("ok\n"))
}

func (w *WorkerServer) handleConfigure(rw http.ResponseWriter, req *http.Request) {
	var creq dist.ConfigureRequest
	if err := json.NewDecoder(req.Body).Decode(&creq); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	resp := w.configure(creq)
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(resp)
}

// configure rebuilds the coordinator's plan from the shipped recipe and
// profiles and verifies the fingerprint. The worker's recipe is the
// coordinator's with process-local fields overridden: its own work
// directory, no op cache (the coordinator owns resume), no listener.
func (w *WorkerServer) configure(creq dist.ConfigureRequest) dist.ConfigureResponse {
	reject := func(format string, args ...any) dist.ConfigureResponse {
		return dist.ConfigureResponse{Error: fmt.Sprintf(format, args...)}
	}
	if creq.Proto != dist.ProtoVersion {
		return reject("proto %d, worker speaks %d", creq.Proto, dist.ProtoVersion)
	}
	var r config.Recipe
	if err := json.Unmarshal(creq.Recipe, &r); err != nil {
		return reject("recipe: %v", err)
	}
	r.WorkDir = w.WorkDir
	r.UseCache = false
	r.UseCheckpoint = false
	r.Listen = ""
	r.EnableTrace = false
	// Profiles come over the wire, not from a sidecar the worker does
	// not have; nothing is persisted worker-side either.
	r.UseProfiles = false
	p, err := plan.BuildWithProfiles(&r, dist.FromProfiles(creq.Profiles))
	if err != nil {
		return reject("plan: %v", err)
	}
	fp := PlanFingerprint(p)
	if fp != creq.Fingerprint {
		return reject("plan fingerprint %s, coordinator has %s", fp, creq.Fingerprint)
	}
	core.ConfigureSpill(p, &r)

	sess := &session{runID: creq.RunID, plan: p, runner: core.NewOpRunner(p.Built(), r.Process, nil)}
	if r.Journal {
		tele, err := telemetry.NewRun(telemetry.RunOptions{
			JournalDir: filepath.Join(w.WorkDir, "journal"),
			RunID:      fmt.Sprintf("%s-w%d", creq.RunID, w.ID),
		})
		if err == nil {
			sess.tele = tele
			tele.Begin("worker", r.ProjectName, "coordinator", 0)
			sess.runner = sess.runner.WithObserver(core.AttachTelemetry(tele, p))
		}
	}

	w.mu.Lock()
	old := w.sess
	w.sess = sess
	w.mu.Unlock()
	if old != nil && old.tele != nil {
		old.tele.End("ok", 0, 0, nil, nil)
		old.tele.Close()
	}
	// Negotiate the wire version: the highest both sides speak. Old
	// coordinators omit MaxProto (0), which pins the run to v1.
	neg := min(creq.MaxProto, w.maxProto())
	if neg < dist.ProtoVersion {
		neg = dist.ProtoVersion
	}
	return dist.ConfigureResponse{OK: true, Proto: neg, Fingerprint: fp, PlanOps: len(p.Nodes)}
}

// faultGate arms the shared run counter and fires the injected fault
// when this request is the trigger. It reports true when the fault
// consumed the request (corrupt mode already wrote garbage). Both run
// endpoints share one counter, so DJ_FAULT specs count stages
// regardless of the wire version in play.
func (w *WorkerServer) faultGate(rw http.ResponseWriter) (sess *session, handled bool) {
	w.mu.Lock()
	idx := w.runs
	w.runs++
	sess = w.sess
	w.mu.Unlock()

	if w.Fault.Active() && idx == w.Fault.After {
		switch w.Fault.Mode {
		case "crash":
			// A kill -9 mid-stage: no response, no cleanup, no exit hooks.
			os.Exit(137)
		case "hang":
			// Never respond; the coordinator's client timeout converts
			// this into a failed attempt.
			select {}
		case "corrupt":
			rw.Write([]byte("{\"shard\":0,\"samples\":999}\nthis is not a frame\n"))
			return sess, true
		}
	}
	return sess, false
}

// runOps validates the requested op range and applies it to d. It
// returns the surviving dataset and per-op flows, or an error message
// for the response header.
func (w *WorkerServer) runOps(sess *session, h dist.RunHeader, d *dataset.Dataset) (*dataset.Dataset, []dist.OpFlow, string) {
	if sess == nil || sess.runID != h.RunID {
		return nil, nil, fmt.Sprintf("not configured for run %s", h.RunID)
	}
	if h.FromOp < 0 || h.ToOp > len(sess.plan.Nodes) || h.FromOp >= h.ToOp {
		return nil, nil, fmt.Sprintf("op range [%d,%d) outside plan of %d nodes", h.FromOp, h.ToOp, len(sess.plan.Nodes))
	}
	if d.Len() != h.Samples {
		return nil, nil, fmt.Sprintf("request says %d samples, payload has %d", h.Samples, d.Len())
	}

	flows := make([]dist.OpFlow, 0, h.ToOp-h.FromOp)
	for i := h.FromOp; i < h.ToOp; i++ {
		node := &sess.plan.Nodes[i]
		if node.Capability != plan.ShardLocal {
			return nil, nil, fmt.Sprintf("op %d (%s) is not shard-local", i, node.Op.Name())
		}
		in := d.Len()
		inBytes := d.TotalBytes()
		start := time.Now()
		out, err := sess.runner.ApplyOp(node.Op, d, 1)
		if err != nil {
			return nil, nil, fmt.Sprintf("op %d (%s): %v", i, node.Op.Name(), err)
		}
		dur := time.Since(start)
		d = out
		flows = append(flows, dist.OpFlow{
			PlanIdx: i, Name: node.Op.Name(),
			In: int64(in), Out: int64(d.Len()), Bytes: inBytes, DurNS: int64(dur),
		})
		if sess.tele != nil {
			sess.tele.Emit(telemetry.Event{
				Type: telemetry.EvOpComplete, Span: sess.tele.NewSpan(),
				Name: node.Op.Name(), Kind: core.OpKind(node.Op), PlanIdx: i,
				Shard: h.Shard, In: int64(in), Out: int64(d.Len()),
				DurNS: int64(dur), Workers: 1,
			})
		}
	}
	return d, flows, ""
}

func (w *WorkerServer) handleRun(rw http.ResponseWriter, req *http.Request) {
	sess, handled := w.faultGate(rw)
	if handled {
		return
	}
	var h dist.RunHeader
	d, err := dist.ReadFrame(req.Body, &h)
	if err != nil {
		dist.WriteFrame(rw, dist.ResultHeader{Shard: h.Shard, Error: fmt.Sprintf("decode: %v", err)}, nil)
		return
	}
	out, flows, errmsg := w.runOps(sess, h, d)
	if errmsg != "" {
		dist.WriteFrame(rw, dist.ResultHeader{Shard: h.Shard, Error: errmsg}, nil)
		return
	}
	// A write error means the response is already partially on the
	// wire; nothing to salvage.
	dist.WriteFrame(rw, dist.ResultHeader{Shard: h.Shard, Samples: out.Len(), Flows: flows}, out)
}

// handleRunV2 is the protocol-v2 stage endpoint: the request arrives as
// a streaming columnar frame, and when the coordinator asked for a
// delta and every op in range is a pure filter, the response is just
// the keep bitmap plus the kept samples' stats columns. Error responses
// stay header-line-only, exactly like v1.
func (w *WorkerServer) handleRunV2(rw http.ResponseWriter, req *http.Request) {
	sess, handled := w.faultGate(rw)
	if handled {
		return
	}
	var h dist.RunHeader
	fr := dist.NewFrame2Reader(req.Body)
	fail := func(format string, args ...any) {
		dist.WriteFrame(rw, dist.ResultHeader{Shard: h.Shard, Error: fmt.Sprintf(format, args...)}, nil)
	}
	if err := fr.Header(&h); err != nil {
		fail("decode: %v", err)
		return
	}
	f, err := fr.Body()
	if err != nil {
		fail("decode: %v", err)
		return
	}
	if f.Delta {
		fail("delta frames are response-only")
		return
	}
	d := f.Data
	in := d.Samples

	// The worker re-derives delta eligibility instead of trusting the
	// header: the fingerprint handshake guarantees both plans agree, so
	// a disagreement here simply degrades to a full response.
	delta := false
	if nodes := deltaNodes(sess); h.Delta && h.FromOp >= 0 && h.ToOp <= len(nodes) {
		delta = true
		for i := h.FromOp; i < h.ToOp; i++ {
			if core.OpKind(nodes[i].Op) != "filter" {
				delta = false
				break
			}
		}
	}

	out, flows, errmsg := w.runOps(sess, h, d)
	if errmsg != "" {
		fail("%s", errmsg)
		return
	}
	rh := dist.ResultHeader{Shard: h.Shard, Samples: out.Len(), Flows: flows}
	if delta {
		if mask, ok := dist.BuildKeepMask(in, out.Samples); ok {
			rh.Delta = true
			dist.WriteDeltaFrame2(rw, rh, mask, len(in), out.Samples, h.Compress)
			return
		}
		// The surviving samples are not an ordered subset of the input
		// (an op rewrote them); ship the full shard instead.
	}
	dist.WriteFrame2(rw, rh, out, h.Compress)
}

// deltaNodes returns the session's plan nodes (nil-safe for the
// eligibility scan; runOps re-validates the range and session).
func deltaNodes(sess *session) []plan.PhysicalOp {
	if sess == nil || sess.plan == nil {
		return nil
	}
	return sess.plan.Nodes
}

// handleFlush reports the worker's quiesced fused-member attribution.
// The coordinator calls it once, after the last stage of the run — the
// only point where taking the member atomics is race-free.
func (w *WorkerServer) handleFlush(rw http.ResponseWriter, req *http.Request) {
	var freq dist.FlushRequest
	if err := json.NewDecoder(req.Body).Decode(&freq); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	w.mu.Lock()
	sess := w.sess
	w.mu.Unlock()
	var resp dist.FlushResponse
	if sess != nil && sess.runID == freq.RunID {
		for i := range sess.plan.Nodes {
			ff, ok := sess.plan.Nodes[i].Op.(*plan.FusedFilter)
			if !ok {
				continue
			}
			for _, ms := range ff.TakeMemberStats() {
				resp.Members = append(resp.Members, dist.MemberFlow{
					PlanIdx: i, Name: ms.Name,
					In: int64(ms.In), Out: int64(ms.Out), Samples: int64(ms.Samples),
					DurNS: int64(ms.Duration),
				})
			}
		}
		if sess.tele != nil {
			sess.tele.End("ok", 0, 0, nil, nil)
			sess.tele.Close()
			sess.tele = nil
		}
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(resp)
}
