// Package config implements the end-to-end recipe configuration layer of
// Sec. 5.1: a YAML-subset parser (the stdlib has none), JSON support,
// layered overrides from environment variables, and the recipe model that
// the executor consumes. Recipes are "all-in-one": dataset paths, worker
// counts, cache/checkpoint policy and the ordered OP list all live in one
// document, which keeps processing reproducible and traceable.
package config

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseYAML parses a YAML subset sufficient for data recipes: nested maps
// by indentation, "- " lists (of scalars or maps), scalars (string, int,
// float, bool, null), quoted strings, inline [a, b] lists, and # comments.
// Tabs are rejected, as in YAML proper.
func ParseYAML(src []byte) (map[string]any, error) {
	lines, err := splitLines(string(src))
	if err != nil {
		return nil, err
	}
	v, next, err := parseBlock(lines, 0, 0)
	if err != nil {
		return nil, err
	}
	if next < len(lines) {
		return nil, fmt.Errorf("yaml: line %d: unexpected dedent/content %q", lines[next].no, lines[next].text)
	}
	if v == nil {
		return map[string]any{}, nil
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("yaml: top-level document must be a mapping")
	}
	return m, nil
}

type line struct {
	no     int    // 1-based source line
	indent int    // leading spaces
	text   string // content without indentation or trailing comment
}

func splitLines(src string) ([]line, error) {
	var out []line
	for i, raw := range strings.Split(src, "\n") {
		no := i + 1
		trimmedR := strings.TrimRight(raw, " \r")
		content := trimmedR
		indent := 0
		for indent < len(content) && content[indent] == ' ' {
			indent++
		}
		content = content[indent:]
		if strings.HasPrefix(content, "\t") || strings.Contains(trimmedR[:indent], "\t") {
			return nil, fmt.Errorf("yaml: line %d: tabs are not allowed for indentation", no)
		}
		content = stripComment(content)
		if strings.TrimSpace(content) == "" {
			continue
		}
		out = append(out, line{no: no, indent: indent, text: content})
	}
	return out, nil
}

// stripComment removes a trailing # comment, respecting quotes.
func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD && (i == 0 || s[i-1] == ' ') {
				return strings.TrimRight(s[:i], " ")
			}
		}
	}
	return s
}

// parseBlock parses the block starting at lines[start] whose members are
// indented exactly at the first member's indent (which must be >= minIndent).
func parseBlock(lines []line, start, minIndent int) (any, int, error) {
	if start >= len(lines) || lines[start].indent < minIndent {
		return nil, start, nil
	}
	indent := lines[start].indent
	if strings.HasPrefix(lines[start].text, "- ") || lines[start].text == "-" {
		return parseList(lines, start, indent)
	}
	return parseMap(lines, start, indent)
}

func parseMap(lines []line, start, indent int) (any, int, error) {
	m := map[string]any{}
	i := start
	for i < len(lines) {
		l := lines[i]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, i, fmt.Errorf("yaml: line %d: unexpected indent", l.no)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, i, fmt.Errorf("yaml: line %d: list item inside mapping", l.no)
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, i, err
		}
		if _, dup := m[key]; dup {
			return nil, i, fmt.Errorf("yaml: line %d: duplicate key %q", l.no, key)
		}
		if rest != "" {
			m[key] = parseScalar(rest)
			i++
			continue
		}
		// Value is the nested block (or null when nothing is nested).
		child, next, err := parseBlock(lines, i+1, indent+1)
		if err != nil {
			return nil, next, err
		}
		m[key] = child
		i = next
	}
	return m, i, nil
}

func parseList(lines []line, start, indent int) (any, int, error) {
	var list []any
	i := start
	for i < len(lines) {
		l := lines[i]
		if l.indent != indent || (!strings.HasPrefix(l.text, "- ") && l.text != "-") {
			if l.indent >= indent && !strings.HasPrefix(l.text, "- ") {
				break
			}
			if l.indent < indent {
				break
			}
		}
		item := strings.TrimPrefix(l.text, "-")
		item = strings.TrimPrefix(item, " ")
		if item == "" {
			// "-" alone: nested block is the element.
			child, next, err := parseBlock(lines, i+1, indent+1)
			if err != nil {
				return nil, next, err
			}
			list = append(list, child)
			i = next
			continue
		}
		// The element content starts at column indent+2. If it is a
		// "key:"-style line, the element is a map that may continue on
		// following deeper-indented lines.
		if key, rest, err := trySplitKey(item); err == nil {
			elem := map[string]any{}
			if rest != "" {
				elem[key] = parseScalar(rest)
				i++
			} else {
				child, next, perr := parseBlock(lines, i+1, indent+1)
				if perr != nil {
					return nil, next, perr
				}
				elem[key] = child
				i = next
			}
			// Additional keys of the same element appear at indent+2.
			for i < len(lines) && lines[i].indent == indent+2 &&
				!strings.HasPrefix(lines[i].text, "- ") {
				k2, r2, err2 := splitKey(lines[i])
				if err2 != nil {
					return nil, i, err2
				}
				if r2 != "" {
					elem[k2] = parseScalar(r2)
					i++
					continue
				}
				child, next, perr := parseBlock(lines, i+1, indent+3)
				if perr != nil {
					return nil, next, perr
				}
				elem[k2] = child
				i = next
			}
			list = append(list, elem)
			continue
		}
		list = append(list, parseScalar(item))
		i++
	}
	return list, i, nil
}

func splitKey(l line) (key, rest string, err error) {
	key, rest, err = trySplitKey(l.text)
	if err != nil {
		return "", "", fmt.Errorf("yaml: line %d: expected \"key: value\", got %q", l.no, l.text)
	}
	return key, rest, nil
}

var errNotKey = fmt.Errorf("not a key: value line")

func trySplitKey(s string) (key, rest string, err error) {
	// Find the first ':' outside quotes followed by space or EOL.
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case ':':
			if inS || inD {
				continue
			}
			if i+1 == len(s) || s[i+1] == ' ' {
				key = strings.TrimSpace(s[:i])
				rest = strings.TrimSpace(s[i+1:])
				if key == "" {
					return "", "", errNotKey
				}
				return unquote(key), rest, nil
			}
		}
	}
	return "", "", errNotKey
}

// parseScalar interprets a YAML scalar or inline list.
func parseScalar(s string) any {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}
		}
		parts := splitInline(inner)
		out := make([]any, len(parts))
		for i, p := range parts {
			out[i] = parseScalar(p)
		}
		return out
	}
	switch s {
	case "null", "~", "":
		return nil
	case "true", "True":
		return true
	case "false", "False":
		return false
	}
	if (strings.HasPrefix(s, "'") && strings.HasSuffix(s, "'") && len(s) >= 2) ||
		(strings.HasPrefix(s, `"`) && strings.HasSuffix(s, `"`) && len(s) >= 2) {
		return unquote(s)
	}
	if n, err := strconv.Atoi(s); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

// splitInline splits "a, b, c" respecting quotes.
func splitInline(s string) []string {
	var parts []string
	depth := 0
	inS, inD := false, false
	last := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '[':
			if !inS && !inD {
				depth++
			}
		case ']':
			if !inS && !inD {
				depth--
			}
		case ',':
			if !inS && !inD && depth == 0 {
				parts = append(parts, strings.TrimSpace(s[last:i]))
				last = i + 1
			}
		}
	}
	parts = append(parts, strings.TrimSpace(s[last:]))
	return parts
}

func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '\'' && s[len(s)-1] == '\'') || (s[0] == '"' && s[len(s)-1] == '"') {
			body := s[1 : len(s)-1]
			if s[0] == '"' {
				body = strings.ReplaceAll(body, `\"`, `"`)
				body = strings.ReplaceAll(body, `\n`, "\n")
				body = strings.ReplaceAll(body, `\t`, "\t")
				body = strings.ReplaceAll(body, `\\`, `\`)
			} else {
				body = strings.ReplaceAll(body, "''", "'")
			}
			return body
		}
	}
	return s
}
