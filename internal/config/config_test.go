package config

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/ops"
	_ "repro/internal/ops/all"
)

func TestParseYAMLScalars(t *testing.T) {
	m, err := ParseYAML([]byte(`
name: demo
count: 42
ratio: 0.75
flag: true
off: false
nothing: null
quoted: "hello: world"
single: 'it''s fine'
`))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name": "demo", "count": 42, "ratio": 0.75, "flag": true,
		"off": false, "nothing": nil, "quoted": "hello: world",
		"single": "it's fine",
	}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("got %#v", m)
	}
}

func TestParseYAMLNestedMaps(t *testing.T) {
	m, err := ParseYAML([]byte(`
outer:
  inner:
    deep: 1
  other: two
`))
	if err != nil {
		t.Fatal(err)
	}
	outer := m["outer"].(map[string]any)
	inner := outer["inner"].(map[string]any)
	if inner["deep"] != 1 || outer["other"] != "two" {
		t.Fatalf("got %#v", m)
	}
}

func TestParseYAMLLists(t *testing.T) {
	m, err := ParseYAML([]byte(`
scalars:
  - a
  - 2
  - true
inline: [x, 1, false]
opslist:
  - first_op:
  - second_op:
      p1: 10
      p2: hello
  - third_op:
      nested: [a, b]
`))
	if err != nil {
		t.Fatal(err)
	}
	scalars := m["scalars"].([]any)
	if len(scalars) != 3 || scalars[0] != "a" || scalars[1] != 2 || scalars[2] != true {
		t.Fatalf("scalars = %#v", scalars)
	}
	inline := m["inline"].([]any)
	if len(inline) != 3 || inline[0] != "x" || inline[1] != 1 || inline[2] != false {
		t.Fatalf("inline = %#v", inline)
	}
	opslist := m["opslist"].([]any)
	if len(opslist) != 3 {
		t.Fatalf("opslist = %#v", opslist)
	}
	second := opslist[1].(map[string]any)["second_op"].(map[string]any)
	if second["p1"] != 10 || second["p2"] != "hello" {
		t.Fatalf("second = %#v", second)
	}
	third := opslist[2].(map[string]any)["third_op"].(map[string]any)
	if nested := third["nested"].([]any); len(nested) != 2 || nested[1] != "b" {
		t.Fatalf("third = %#v", third)
	}
	first := opslist[0].(map[string]any)
	if v, ok := first["first_op"]; !ok || v != nil {
		t.Fatalf("first = %#v", first)
	}
}

func TestParseYAMLComments(t *testing.T) {
	m, err := ParseYAML([]byte(`
# full-line comment
key: value # trailing comment
url: "http://x#y" # hash inside quotes preserved
`))
	if err != nil {
		t.Fatal(err)
	}
	if m["key"] != "value" || m["url"] != "http://x#y" {
		t.Fatalf("got %#v", m)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []string{
		"\tkey: tab-indent",
		"key: 1\nkey: 2",
		"just a line without colon",
	}
	for _, src := range cases {
		if _, err := ParseYAML([]byte(src)); err == nil {
			t.Errorf("ParseYAML(%q) should fail", src)
		}
	}
}

func TestParseYAMLEmpty(t *testing.T) {
	m, err := ParseYAML([]byte("\n# only comments\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 0 {
		t.Fatalf("got %#v", m)
	}
}

const sampleRecipe = `
project_name: unit
dataset_path: in.jsonl
export_path: out.jsonl
np: 4
use_cache: false
op_fusion: true
trace: true
process:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 5
      max_num: 100
  - document_deduplicator:
      lowercase: false
`

func TestRecipeFromYAML(t *testing.T) {
	r, err := ParseRecipe(sampleRecipe)
	if err != nil {
		t.Fatal(err)
	}
	if r.ProjectName != "unit" || r.NP != 4 || r.UseCache || !r.OpFusion || !r.EnableTrace {
		t.Fatalf("recipe = %+v", r)
	}
	if len(r.Process) != 3 {
		t.Fatalf("process = %+v", r.Process)
	}
	if r.Process[1].Name != "word_num_filter" || r.Process[1].Params.Int("min_num", 0) != 5 {
		t.Fatalf("op spec = %+v", r.Process[1])
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecipeValidateUnknownOp(t *testing.T) {
	r, err := ParseRecipe("process:\n  - nonexistent_op:\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err == nil {
		t.Fatal("unknown op must fail validation")
	}
}

func TestRecipeValidateEmpty(t *testing.T) {
	r := Default()
	if err := r.Validate(); err == nil {
		t.Fatal("empty process must fail validation")
	}
}

func TestRecipeBuildOps(t *testing.T) {
	r, err := ParseRecipe(sampleRecipe)
	if err != nil {
		t.Fatal(err)
	}
	built, err := r.BuildOps()
	if err != nil {
		t.Fatal(err)
	}
	if len(built) != 3 {
		t.Fatalf("built %d ops", len(built))
	}
	if _, ok := built[0].(ops.Mapper); !ok {
		t.Fatal("op 0 should be a Mapper")
	}
	if _, ok := built[1].(ops.Filter); !ok {
		t.Fatal("op 1 should be a Filter")
	}
	if _, ok := built[2].(ops.Deduplicator); !ok {
		t.Fatal("op 2 should be a Deduplicator")
	}
}

func TestRecipeAddRemoveSetParam(t *testing.T) {
	r, _ := ParseRecipe(sampleRecipe)
	if n := r.Remove("word_num_filter"); n != 1 {
		t.Fatalf("Remove = %d", n)
	}
	if len(r.Process) != 2 {
		t.Fatalf("process after remove = %+v", r.Process)
	}
	r.Add(OpSpec{Name: "text_length_filter", Params: ops.Params{"min_len": 3}})
	if r.Process[len(r.Process)-1].Name != "text_length_filter" {
		t.Fatal("Add failed")
	}
	if !r.SetParam("text_length_filter", "min_len", 9) {
		t.Fatal("SetParam failed")
	}
	if r.Process[len(r.Process)-1].Params.Int("min_len", 0) != 9 {
		t.Fatal("SetParam did not stick")
	}
	if r.SetParam("missing_op", "k", 1) {
		t.Fatal("SetParam on missing op should be false")
	}
}

func TestApplyEnv(t *testing.T) {
	r := Default()
	env := map[string]string{
		"DJ_NP":        "16",
		"DJ_USE_CACHE": "false",
		"DJ_OP_FUSION": "1",
		"DJ_WORK_DIR":  "/tmp/dj",
	}
	r.ApplyEnv(func(k string) string { return env[k] })
	if r.NP != 16 || r.UseCache || !r.OpFusion || r.WorkDir != "/tmp/dj" {
		t.Fatalf("recipe = %+v", r)
	}
}

func TestLoadYAMLAndJSONFiles(t *testing.T) {
	dir := t.TempDir()
	ypath := filepath.Join(dir, "r.yaml")
	os.WriteFile(ypath, []byte(sampleRecipe), 0o644)
	r, err := Load(ypath)
	if err != nil {
		t.Fatal(err)
	}
	if r.ProjectName != "unit" {
		t.Fatalf("yaml load = %+v", r)
	}

	jpath := filepath.Join(dir, "r.json")
	os.WriteFile(jpath, []byte(`{"project_name":"junit","np":2,"process":[{"word_num_filter":{"min_num":3}}]}`), 0o644)
	rj, err := Load(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if rj.ProjectName != "junit" || rj.NP != 2 || rj.Process[0].Params.Int("min_num", 0) != 3 {
		t.Fatalf("json load = %+v", rj)
	}
}

func TestUnknownRecipeKeyRejected(t *testing.T) {
	if _, err := ParseRecipe("bogus_key: 1\n"); err == nil {
		t.Fatal("unknown key must be rejected")
	}
}

func TestAllBuiltinRecipesParseAndValidate(t *testing.T) {
	names := BuiltinRecipeNames()
	if len(names) < 15 {
		t.Fatalf("expected a rich recipe library, got %d", len(names))
	}
	for _, name := range names {
		r, err := BuiltinRecipe(name)
		if err != nil {
			t.Errorf("recipe %s: %v", name, err)
			continue
		}
		if err := r.Validate(); err != nil {
			t.Errorf("recipe %s invalid: %v", name, err)
		}
		if _, err := r.BuildOps(); err != nil {
			t.Errorf("recipe %s build: %v", name, err)
		}
	}
	if _, err := BuiltinRecipe("no-such-recipe"); err == nil {
		t.Fatal("unknown builtin must error")
	}
}

func TestRecipeAdaptiveKeys(t *testing.T) {
	r, err := ParseRecipe(`
project_name: adaptive-keys
adaptive: true
max_workers: 12
target_mem_mb: 512
process:
  - whitespace_normalization_mapper:
`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Adaptive || r.MaxWorkers != 12 || r.TargetMemMB != 512 {
		t.Fatalf("adaptive keys not parsed: %+v", r)
	}
}

func TestApplyEnvAdaptive(t *testing.T) {
	r := Default()
	env := map[string]string{
		"DJ_ADAPTIVE":      "true",
		"DJ_MAX_WORKERS":   "7",
		"DJ_TARGET_MEM_MB": "128",
	}
	r.ApplyEnv(func(k string) string { return env[k] })
	if !r.Adaptive || r.MaxWorkers != 7 || r.TargetMemMB != 128 {
		t.Fatalf("env overrides not applied: %+v", r)
	}
}
