package config

import (
	"fmt"
	"sort"
)

// builtinRecipes holds the ready-to-use data recipes shipped with the
// system (Sec. 5.1). Dataset paths use the "hub:" scheme resolved by the
// format package to the built-in synthetic corpora, so every recipe runs
// out of the box; point dataset_path at a file to use real data.
var builtinRecipes = map[string]string{
	// --- pre-training refinement, per source (RedPajama/Pile-style) ---
	"pretrain-web-en": `
project_name: pretrain-web-en
dataset_path: "hub:web-en"
np: 0
process:
  - fix_unicode_mapper:
  - clean_html_mapper:
  - clean_links_mapper:
  - clean_email_mapper:
  - whitespace_normalization_mapper:
  - language_id_score_filter:
      lang: en
      min_score: 0.2
  - alphanumeric_filter:
      min_ratio: 0.55
  - special_characters_filter:
      max_ratio: 0.25
  - word_num_filter:
      min_num: 20
      max_num: 50000
  - character_repetition_filter:
      rep_len: 10
      max_ratio: 0.4
  - word_repetition_filter:
      rep_len: 10
      max_ratio: 0.3
  - stopwords_filter:
      lang: en
      min_ratio: 0.1
  - flagged_words_filter:
      lang: en
      max_ratio: 0.01
  - perplexity_filter:
      max_ppl: 6000
  - document_deduplicator:
  - document_minhash_deduplicator:
      jaccard_threshold: 0.7
`,
	"pretrain-books": `
project_name: pretrain-books
dataset_path: "hub:books"
process:
  - fix_unicode_mapper:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 100
  - word_repetition_filter:
      rep_len: 10
      max_ratio: 0.3
  - flagged_words_filter:
      lang: en
      max_ratio: 0.02
  - document_deduplicator:
`,
	"pretrain-arxiv": `
project_name: pretrain-arxiv
dataset_path: "hub:arxiv"
process:
  - remove_comments_mapper:
  - expand_macro_mapper:
  - remove_bibliography_mapper:
  - remove_header_mapper:
  - remove_table_text_mapper:
  - whitespace_normalization_mapper:
  - text_length_filter:
      min_len: 200
  - alphanumeric_filter:
      min_ratio: 0.5
  - document_deduplicator:
`,
	"pretrain-code": `
project_name: pretrain-code
dataset_path: "hub:code"
process:
  - clean_copyright_mapper:
  - clean_email_mapper:
  - remove_non_printing_mapper:
  - maximum_line_length_filter:
      min_len: 1
      max_len: 1000
  - average_line_length_filter:
      min_len: 5
      max_len: 200
  - alphanumeric_filter:
      min_ratio: 0.4
  - text_length_filter:
      min_len: 50
  - document_deduplicator:
      lowercase: false
      ignore_non_character: false
`,
	"pretrain-wiki": `
project_name: pretrain-wiki
dataset_path: "hub:wiki"
process:
  - fix_unicode_mapper:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 30
  - special_characters_filter:
      max_ratio: 0.2
  - document_deduplicator:
`,
	"pretrain-stackexchange": `
project_name: pretrain-stackexchange
dataset_path: "hub:stackexchange"
process:
  - clean_html_mapper:
  - clean_links_mapper:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 15
  - stopwords_filter:
      lang: en
      min_ratio: 0.08
  - document_deduplicator:
`,
	"pretrain-c4": `
project_name: pretrain-c4
dataset_path: "hub:c4"
process:
  - fix_unicode_mapper:
  - clean_links_mapper:
  - whitespace_normalization_mapper:
  - language_id_score_filter:
      lang: en
      min_score: 0.2
  - word_num_filter:
      min_num: 20
  - character_repetition_filter:
      max_ratio: 0.4
  - flagged_words_filter:
      lang: en
      max_ratio: 0.01
  - document_minhash_deduplicator:
`,
	"pretrain-zh": `
project_name: pretrain-zh
dataset_path: "hub:web-zh"
process:
  - fix_unicode_mapper:
  - punctuation_normalization_mapper:
  - whitespace_normalization_mapper:
  - language_id_score_filter:
      lang: zh
      min_score: 0.5
  - text_length_filter:
      min_len: 20
  - flagged_words_filter:
      lang: zh
      max_ratio: 0.01
  - document_deduplicator:
`,
	// --- weighted multi-source mixing (paper §3.1: corpora are mixed by
	// weight before the op chain; RedPajama-style source proportions) ---
	"pretrain-mix": `
project_name: pretrain-mix
sources:
  - spec: "hub:web-en?docs=150&seed=11"
    weight: 2
  - spec: "hub:wiki?docs=100&seed=12"
    weight: 1
  - spec: "hub:books?docs=80&seed=13"
    weight: 1
    max_samples: 50
process:
  - fix_unicode_mapper:
  - clean_links_mapper:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 15
  - character_repetition_filter:
      rep_len: 10
      max_ratio: 0.5
  - document_deduplicator:
`,
	// --- fine-tuning recipes (Alpaca-CoT-style) ---
	"finetune-ift-en": `
project_name: finetune-ift-en
dataset_path: "hub:ift-en"
process:
  - whitespace_normalization_mapper:
  - specified_field_filter:
      field: meta.usage
      target_value: [IFT]
  - specified_field_filter:
      field: meta.lang_tag
      target_value: [EN]
  - word_num_filter:
      min_num: 5
      max_num: 2000
  - text_action_filter:
      min_action_num: 1
  - document_deduplicator:
`,
	"finetune-cft-en": `
project_name: finetune-cft-en
dataset_path: "hub:cft-en"
process:
  - whitespace_normalization_mapper:
  - specified_field_filter:
      field: meta.usage
      target_value: [CFT]
  - specified_field_filter:
      field: meta.lang_tag
      target_value: [EN]
  - word_num_filter:
      min_num: 5
      max_num: 4000
  - text_action_filter:
      min_action_num: 1
  - text_entity_dependency_filter:
      min_dependency_num: 1
  - flagged_words_filter:
      lang: en
      max_ratio: 0.005
  - document_deduplicator:
`,
	"finetune-cft-zh": `
project_name: finetune-cft-zh
dataset_path: "hub:cft-zh"
process:
  - whitespace_normalization_mapper:
  - punctuation_normalization_mapper:
  - specified_field_filter:
      field: meta.usage
      target_value: [CFT]
  - specified_field_filter:
      field: meta.lang_tag
      target_value: [ZH]
  - text_length_filter:
      min_len: 10
      max_len: 8000
  - flagged_words_filter:
      lang: zh
      max_ratio: 0.005
  - document_deduplicator:
`,
	"finetune-diversity-en": `
project_name: finetune-diversity-en
dataset_path: "hub:cft-en"
process:
  - whitespace_normalization_mapper:
  - text_action_filter:
      min_action_num: 1
  - text_entity_dependency_filter:
      min_dependency_num: 1
  - text_augment_mapper:
      seed: 7
      swap_rate: 0.02
  - document_deduplicator:
`,
	// --- general-purpose utility recipes ---
	"minimal-clean": `
project_name: minimal-clean
process:
  - fix_unicode_mapper:
  - whitespace_normalization_mapper:
  - text_length_filter:
      min_len: 1
`,
	"aggressive-clean": `
project_name: aggressive-clean
process:
  - fix_unicode_mapper:
  - clean_html_mapper:
  - clean_links_mapper:
  - clean_email_mapper:
  - clean_ip_mapper:
  - remove_non_printing_mapper:
  - remove_long_words_mapper:
      max_len: 50
  - whitespace_normalization_mapper:
  - alphanumeric_filter:
      min_ratio: 0.6
  - special_characters_filter:
      max_ratio: 0.2
  - word_num_filter:
      min_num: 10
  - stopwords_filter:
      min_ratio: 0.12
  - flagged_words_filter:
      max_ratio: 0.005
  - perplexity_filter:
      max_ppl: 4000
  - document_deduplicator:
  - document_minhash_deduplicator:
  - document_simhash_deduplicator:
`,
	"dedup-only": `
project_name: dedup-only
process:
  - document_deduplicator:
  - document_minhash_deduplicator:
      jaccard_threshold: 0.7
`,
	"probe-stats": `
project_name: probe-stats
process:
  - alphanumeric_filter:
      min_ratio: 0
  - special_characters_filter:
      max_ratio: 1
  - word_num_filter:
      min_num: 0
  - character_repetition_filter:
      max_ratio: 1
  - word_repetition_filter:
      max_ratio: 1
  - stopwords_filter:
      min_ratio: 0
  - flagged_words_filter:
      max_ratio: 1
  - perplexity_filter:
      max_ppl: 1000000000
  - quality_score_filter:
      min_score: 0
  - language_id_score_filter:
      lang: en
      min_score: 0
`,
	// --- financial / reading-assistance / role-play domain recipes
	// (the real-world product needs of Sec. 7.3) ---
	"domain-financial": `
project_name: domain-financial
process:
  - fix_unicode_mapper:
  - whitespace_normalization_mapper:
  - digit_ratio_filter:
      min_ratio: 0.01
      max_ratio: 0.6
  - word_num_filter:
      min_num: 10
  - flagged_words_filter:
      max_ratio: 0.002
  - document_deduplicator:
`,
	"domain-reading": `
project_name: domain-reading
process:
  - fix_unicode_mapper:
  - whitespace_normalization_mapper:
  - text_length_filter:
      min_len: 2000
  - word_repetition_filter:
      max_ratio: 0.2
  - stopwords_filter:
      min_ratio: 0.15
  - document_deduplicator:
`,
	"domain-roleplay": `
project_name: domain-roleplay
dataset_path: "hub:cft-en"
process:
  - whitespace_normalization_mapper:
  - text_action_filter:
      min_action_num: 1
  - word_num_filter:
      min_num: 5
      max_num: 1000
  - flagged_words_filter:
      max_ratio: 0.001
  - document_deduplicator:
`,
}

// BuiltinRecipeNames lists the shipped recipes, sorted.
func BuiltinRecipeNames() []string {
	names := make([]string, 0, len(builtinRecipes))
	for n := range builtinRecipes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BuiltinRecipe parses and returns a shipped recipe by name.
func BuiltinRecipe(name string) (*Recipe, error) {
	src, ok := builtinRecipes[name]
	if !ok {
		return nil, fmt.Errorf("config: unknown built-in recipe %q (have %v)", name, BuiltinRecipeNames())
	}
	return ParseRecipe(src)
}
