package config

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/format"
	"repro/internal/ops"
)

// OpSpec names one operator and its parameters within a recipe's process
// list.
type OpSpec struct {
	Name   string
	Params ops.Params
}

// SourceSpec is one weighted input of a multi-source recipe — an alias of
// the format layer's type so recipes and the mixer share one definition.
type SourceSpec = format.WeightedSpec

// Recipe is the all-in-one configuration for one processing run,
// mirroring the paper's config files: environment parameters, the ordered
// OP list, and cache/checkpoint policy.
type Recipe struct {
	ProjectName string
	// DatasetPath is the single-input dataset spec (file, dir, glob,
	// "hub:", "mix:"); ignored when Sources is non-empty.
	DatasetPath string
	// Sources is the weighted multi-source input list (recipe key
	// "sources:"). When non-empty it overrides DatasetPath; the inputs
	// are interleaved deterministically by weight with per-sample
	// provenance tags (see format.MixSource and DatasetSpec).
	Sources    []SourceSpec
	ExportPath string
	// NP is the number of parallel workers (0 = GOMAXPROCS).
	NP int
	// TextKey is the default text field OPs process.
	TextKey string
	// UseCache enables the per-OP dataset cache.
	UseCache bool
	// UseCheckpoint enables crash-recovery checkpoints.
	UseCheckpoint bool
	// CacheCompression selects the cache codec: "", "gzip", "flate", "lzj".
	CacheCompression string
	// OpFusion enables context-sharing fusion and reordering (Sec. 6).
	OpFusion bool
	// UseProfiles lets the planner read and persist the per-recipe
	// profile sidecar (<work_dir>/profiles/<project>.json): measured
	// per-op cost and selectivity from previous runs steer the
	// reordering of commutative filter groups. Off, every run plans
	// from static cost hints and nothing is persisted.
	UseProfiles bool
	// Adaptive enables the streaming engine's runtime controller, which
	// retunes shard size, worker count and backpressure from live
	// measurements (djprocess -stream -adaptive).
	Adaptive bool
	// MaxWorkers caps the adaptive worker pool (0 = max(NP, GOMAXPROCS)).
	MaxWorkers int
	// TargetMemMB bounds the text megabytes resident across in-flight
	// shards in adaptive streaming mode (0 = unbounded). It also caps
	// the deduplicators' signature/shingle indexes on both backends:
	// the planner's spill pass hands each dedup op a slice of this
	// target and the op spills its index to disk when the estimate
	// exceeds it (see DedupSpill).
	TargetMemMB int
	// DedupSpill lets deduplicators spill their indexes to budget-
	// bounded disk runs when TargetMemMB is set. On by default; with no
	// TargetMemMB it has no effect.
	DedupSpill bool
	// IndexPartitions sets the partition count of the streaming engine's
	// shared signature indexes (recipe key index_partitions, env
	// DJ_INDEX_PARTITIONS, flag -index-partitions). 0 = auto: the engine
	// derives it from its worker count (GOMAXPROCS-bound) at run time.
	// Values round up to a power of two. Partitioning changes wall-clock
	// parallelism only, never the kept set.
	IndexPartitions int
	// DistCompress enables lzj compression of the frames exchanged with
	// djworker fleets over the v2 dispatch wire (djprocess -dist-compress,
	// recipe key dist_compress). v1 workers ignore it. Off by default:
	// loopback fleets are rarely bandwidth-bound.
	DistCompress bool
	// EnableTrace records per-OP lineage for the tracer.
	EnableTrace bool
	// Listen, when non-empty, serves the live ops endpoint on this
	// address during the run: /metrics (Prometheus text), /progress
	// (JSON snapshot) and /debug/pprof/* (djprocess -listen).
	Listen string
	// Journal enables the structured run journal: an append-only JSONL
	// event stream under <work_dir>/journal/<run_id>.jsonl. On by
	// default; disable with journal: false or DJ_JOURNAL=false.
	Journal bool
	// WorkDir holds caches, checkpoints and trace output.
	WorkDir string
	// Process is the ordered operator list.
	Process []OpSpec
}

// Default returns a recipe with the documented defaults.
func Default() *Recipe {
	return &Recipe{
		ProjectName: "data-juicer",
		TextKey:     "text",
		UseCache:    true,
		OpFusion:    true,
		UseProfiles: true,
		DedupSpill:  true,
		EnableTrace: false,
		Journal:     true,
		WorkDir:     ".data-juicer",
	}
}

// FromMap builds a recipe from a parsed YAML/JSON document, layered over
// the defaults.
func FromMap(m map[string]any) (*Recipe, error) {
	r := Default()
	for key, v := range m {
		switch key {
		case "project_name":
			r.ProjectName = asString(v)
		case "dataset_path":
			r.DatasetPath = asString(v)
		case "export_path":
			r.ExportPath = asString(v)
		case "np":
			r.NP = asInt(v)
		case "text_key":
			r.TextKey = asString(v)
		case "use_cache":
			r.UseCache = asBool(v)
		case "use_checkpoint":
			r.UseCheckpoint = asBool(v)
		case "cache_compression":
			r.CacheCompression = asString(v)
		case "op_fusion":
			r.OpFusion = asBool(v)
		case "use_profiles":
			r.UseProfiles = asBool(v)
		case "adaptive":
			r.Adaptive = asBool(v)
		case "max_workers":
			r.MaxWorkers = asInt(v)
		case "target_mem_mb":
			r.TargetMemMB = asInt(v)
		case "dedup_spill":
			r.DedupSpill = asBool(v)
		case "index_partitions":
			r.IndexPartitions = asInt(v)
		case "dist_compress":
			r.DistCompress = asBool(v)
		case "trace":
			r.EnableTrace = asBool(v)
		case "listen":
			r.Listen = asString(v)
		case "journal":
			r.Journal = asBool(v)
		case "work_dir":
			r.WorkDir = asString(v)
		case "sources":
			specs, err := parseSources(v)
			if err != nil {
				return nil, err
			}
			r.Sources = specs
		case "process":
			specs, err := parseProcess(v)
			if err != nil {
				return nil, err
			}
			r.Process = specs
		default:
			return nil, fmt.Errorf("config: unknown recipe key %q (known keys: %v)", key, KnownRecipeKeys())
		}
	}
	return r, nil
}

// recipeKeys lists every key FromMap accepts, in documentation order.
// docs/recipes.md must reference each of them (enforced by the docs-lint
// test) and FromMap must accept each (enforced by TestKnownRecipeKeys).
var recipeKeys = []string{
	"project_name", "dataset_path", "sources", "export_path", "np",
	"text_key", "use_cache", "use_checkpoint", "cache_compression",
	"op_fusion", "use_profiles", "adaptive", "max_workers",
	"target_mem_mb", "dedup_spill", "index_partitions", "dist_compress",
	"trace", "listen", "journal", "work_dir", "process",
}

// KnownRecipeKeys returns every recognized recipe key.
func KnownRecipeKeys() []string {
	return append([]string(nil), recipeKeys...)
}

// parseSources parses the sources: list: entries are either plain spec
// strings (weight 1) or mappings with spec (or path), weight, and
// max_samples keys.
func parseSources(v any) ([]SourceSpec, error) {
	list, ok := v.([]any)
	if !ok {
		if v == nil {
			return nil, nil
		}
		return nil, fmt.Errorf("config: sources must be a list, got %T", v)
	}
	specs := make([]SourceSpec, 0, len(list))
	for i, item := range list {
		switch e := item.(type) {
		case string:
			specs = append(specs, SourceSpec{Spec: e, Weight: 1})
		case map[string]any:
			ws := SourceSpec{Weight: 1}
			for k, ev := range e {
				switch k {
				case "spec", "path":
					if ws.Spec != "" {
						return nil, fmt.Errorf("config: sources[%d]: both spec and path given", i)
					}
					ws.Spec = asString(ev)
				case "weight":
					f, ok := asFloatStrict(ev)
					if !ok {
						return nil, fmt.Errorf("config: sources[%d]: weight must be a number, got %T (%v)", i, ev, ev)
					}
					if f == 0 {
						// 0 would silently coerce to the default 1;
						// excluding a source is done by omitting it.
						return nil, fmt.Errorf("config: sources[%d]: weight 0 — omit the source instead", i)
					}
					ws.Weight = f
				case "max_samples":
					f, ok := asFloatStrict(ev)
					if !ok || f != float64(int(f)) {
						return nil, fmt.Errorf("config: sources[%d]: max_samples must be an integer, got %T (%v)", i, ev, ev)
					}
					ws.MaxSamples = int(f)
				default:
					return nil, fmt.Errorf("config: sources[%d]: unknown key %q (want spec/path, weight, max_samples)", i, k)
				}
			}
			if ws.Spec == "" {
				return nil, fmt.Errorf("config: sources[%d]: missing spec", i)
			}
			specs = append(specs, ws)
		default:
			return nil, fmt.Errorf("config: sources[%d]: unsupported entry type %T", i, item)
		}
	}
	return specs, nil
}

// DatasetSpec returns the single input spec of the recipe: DatasetPath
// when Sources is empty, otherwise the canonical "mix:" encoding of the
// weighted source list. Both execution backends open this one spec
// through the format layer, so mixed multi-format inputs feed the batch
// executor and the streaming engine identically.
func (r *Recipe) DatasetSpec() string {
	if len(r.Sources) == 0 {
		return r.DatasetPath
	}
	return format.EncodeMix(r.Sources)
}

func parseProcess(v any) ([]OpSpec, error) {
	list, ok := v.([]any)
	if !ok {
		if v == nil {
			return nil, nil
		}
		return nil, fmt.Errorf("config: process must be a list, got %T", v)
	}
	specs := make([]OpSpec, 0, len(list))
	for i, item := range list {
		switch e := item.(type) {
		case string:
			specs = append(specs, OpSpec{Name: e})
		case map[string]any:
			if len(e) != 1 {
				return nil, fmt.Errorf("config: process[%d]: each entry must hold exactly one operator, got %d keys", i, len(e))
			}
			for name, params := range e {
				p := ops.Params{}
				switch pm := params.(type) {
				case nil:
				case map[string]any:
					for k, pv := range pm {
						p[k] = pv
					}
				default:
					return nil, fmt.Errorf("config: process[%d] %s: params must be a mapping, got %T", i, name, params)
				}
				specs = append(specs, OpSpec{Name: name, Params: p})
			}
		default:
			return nil, fmt.Errorf("config: process[%d]: unsupported entry type %T", i, item)
		}
	}
	return specs, nil
}

// Load reads a recipe from a .yaml or .json file, then applies DJ_*
// environment overrides.
func Load(path string) (*Recipe, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("config: %s: %w", path, err)
		}
	default:
		m, err = ParseYAML(raw)
		if err != nil {
			return nil, fmt.Errorf("config: %s: %w", path, err)
		}
	}
	r, err := FromMap(m)
	if err != nil {
		return nil, err
	}
	r.ApplyEnv(os.Getenv)
	return r, nil
}

// ParseRecipe parses YAML source directly (for embedded built-in recipes).
func ParseRecipe(src string) (*Recipe, error) {
	m, err := ParseYAML([]byte(src))
	if err != nil {
		return nil, err
	}
	return FromMap(m)
}

// ApplyEnv overlays scalar settings from environment variables using the
// DJ_ prefix (e.g. DJ_NP=8, DJ_USE_CACHE=false, DJ_EXPORT_PATH=out.jsonl).
// getenv is injected for testability.
func (r *Recipe) ApplyEnv(getenv func(string) string) {
	if v := getenv("DJ_NP"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			r.NP = n
		}
	}
	if v := getenv("DJ_USE_CACHE"); v != "" {
		r.UseCache = v == "true" || v == "1"
	}
	if v := getenv("DJ_USE_CHECKPOINT"); v != "" {
		r.UseCheckpoint = v == "true" || v == "1"
	}
	if v := getenv("DJ_OP_FUSION"); v != "" {
		r.OpFusion = v == "true" || v == "1"
	}
	if v := getenv("DJ_USE_PROFILES"); v != "" {
		r.UseProfiles = v == "true" || v == "1"
	}
	if v := getenv("DJ_ADAPTIVE"); v != "" {
		r.Adaptive = v == "true" || v == "1"
	}
	if v := getenv("DJ_MAX_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			r.MaxWorkers = n
		}
	}
	if v := getenv("DJ_TARGET_MEM_MB"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			r.TargetMemMB = n
		}
	}
	if v := getenv("DJ_DEDUP_SPILL"); v != "" {
		r.DedupSpill = v == "true" || v == "1"
	}
	if v := getenv("DJ_INDEX_PARTITIONS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			r.IndexPartitions = n
		}
	}
	if v := getenv("DJ_DIST_COMPRESS"); v != "" {
		r.DistCompress = v == "true" || v == "1"
	}
	if v := getenv("DJ_EXPORT_PATH"); v != "" {
		r.ExportPath = v
	}
	if v := getenv("DJ_DATASET_PATH"); v != "" {
		// An explicit input override replaces the recipe's whole input,
		// including a sources: list (a "mix:" value can express one).
		r.DatasetPath = v
		r.Sources = nil
	}
	if v := getenv("DJ_LISTEN"); v != "" {
		r.Listen = v
	}
	if v := getenv("DJ_JOURNAL"); v != "" {
		r.Journal = v == "true" || v == "1"
	}
	if v := getenv("DJ_WORK_DIR"); v != "" {
		r.WorkDir = v
	}
	if v := getenv("DJ_CACHE_COMPRESSION"); v != "" {
		r.CacheCompression = v
	}
}

// Validate checks the recipe for structural problems: unknown operators,
// empty process lists, and malformed source entries are reported before
// any data is touched.
func (r *Recipe) Validate() error {
	if len(r.Process) == 0 {
		return fmt.Errorf("config: recipe has an empty process list")
	}
	for i, ws := range r.Sources {
		// Sources travel to both backends as an encoded "mix:" string;
		// CheckEncodable enforces the weight/max_samples invariants and
		// rejects specs the grammar would misparse before any data loads.
		if err := format.CheckEncodable(ws); err != nil {
			return fmt.Errorf("config: sources[%d]: %w", i, err)
		}
	}
	for i, spec := range r.Process {
		if _, ok := ops.InfoFor(spec.Name); !ok {
			return fmt.Errorf("config: process[%d]: unknown operator %q", i, spec.Name)
		}
	}
	return nil
}

// BuildOps instantiates the recipe's operator list. The recipe-level
// TextKey is injected into every OP that does not set its own.
func (r *Recipe) BuildOps() ([]ops.OP, error) {
	built := make([]ops.OP, 0, len(r.Process))
	for i, spec := range r.Process {
		p := ops.Params{}
		for k, v := range spec.Params {
			p[k] = v
		}
		if _, ok := p["text_key"]; !ok && r.TextKey != "" && r.TextKey != "text" {
			p["text_key"] = r.TextKey
		}
		op, err := ops.Build(spec.Name, p)
		if err != nil {
			return nil, fmt.Errorf("config: process[%d]: %w", i, err)
		}
		built = append(built, op)
	}
	return built, nil
}

// Remove deletes the named operators from the process list ("subtraction"
// customization, Sec. 5.1) and reports how many entries were removed.
func (r *Recipe) Remove(names ...string) int {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	kept := r.Process[:0]
	removed := 0
	for _, s := range r.Process {
		if drop[s.Name] {
			removed++
			continue
		}
		kept = append(kept, s)
	}
	r.Process = kept
	return removed
}

// Add appends operators to the process list ("addition" customization).
func (r *Recipe) Add(specs ...OpSpec) { r.Process = append(r.Process, specs...) }

// SetParam overrides one parameter of the first operator with the given
// name, returning false if the operator is absent.
func (r *Recipe) SetParam(opName, key string, value any) bool {
	for i := range r.Process {
		if r.Process[i].Name == opName {
			if r.Process[i].Params == nil {
				r.Process[i].Params = ops.Params{}
			}
			r.Process[i].Params[key] = value
			return true
		}
	}
	return false
}

func asString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	return fmt.Sprintf("%v", v)
}

func asInt(v any) int {
	switch x := v.(type) {
	case int:
		return x
	case float64:
		return int(x)
	}
	return 0
}

func asBool(v any) bool {
	b, _ := v.(bool)
	return b
}

// asFloatStrict converts parser-produced numeric types only; anything
// else (strings, bools, nil) reports !ok so callers can error loudly
// instead of silently defaulting.
func asFloatStrict(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	}
	return 0, false
}
