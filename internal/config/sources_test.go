package config

import (
	"reflect"
	"strings"
	"testing"
)

// TestRecipeSourcesParsing: the sources: key accepts plain spec strings
// and weighted mappings, and DatasetSpec encodes them canonically.
func TestRecipeSourcesParsing(t *testing.T) {
	r, err := ParseRecipe(`
project_name: mixed
sources:
  - "plain.jsonl"
  - spec: "weighted.csv.gz"
    weight: 2.5
  - path: "hub:wiki?docs=40&seed=2"
    weight: 1
    max_samples: 10
process:
  - whitespace_normalization_mapper:
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []SourceSpec{
		{Spec: "plain.jsonl", Weight: 1},
		{Spec: "weighted.csv.gz", Weight: 2.5},
		{Spec: "hub:wiki?docs=40&seed=2", Weight: 1, MaxSamples: 10},
	}
	if !reflect.DeepEqual(r.Sources, want) {
		t.Fatalf("sources = %+v\nwant %+v", r.Sources, want)
	}
	spec := r.DatasetSpec()
	wantSpec := "mix:plain.jsonl,weighted.csv.gz@2.5,hub:wiki?docs=40&seed=2@1:10"
	if spec != wantSpec {
		t.Fatalf("DatasetSpec = %q, want %q", spec, wantSpec)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecipeSourcesErrors(t *testing.T) {
	if _, err := ParseRecipe("sources: notalist\nprocess:\n  - fix_unicode_mapper:\n"); err == nil {
		t.Fatal("scalar sources must error")
	}
	if _, err := ParseRecipe(`
sources:
  - spec: "a.jsonl"
    bogus_key: 1
process:
  - fix_unicode_mapper:
`); err == nil || !strings.Contains(err.Error(), "unknown key") {
		t.Fatal("unknown source key must error")
	}
	if _, err := ParseRecipe(`
sources:
  - weight: 2
process:
  - fix_unicode_mapper:
`); err == nil || !strings.Contains(err.Error(), "missing spec") {
		t.Fatal("missing spec must error")
	}
	r, err := ParseRecipe(`
sources:
  - spec: "a.jsonl"
    weight: -2
process:
  - fix_unicode_mapper:
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "weight") {
		t.Fatalf("negative weight must fail validation, got %v", err)
	}

	// Explicit zero weight would coerce to the default 1; reject it.
	if _, err := ParseRecipe(`
sources:
  - spec: "a.jsonl"
    weight: 0
process:
  - fix_unicode_mapper:
`); err == nil || !strings.Contains(err.Error(), "weight 0") {
		t.Fatalf("zero weight: err = %v", err)
	}

	// Non-numeric weight must error loudly, not silently default.
	if _, err := ParseRecipe(`
sources:
  - spec: "a.jsonl"
    weight: "2"
process:
  - fix_unicode_mapper:
`); err == nil || !strings.Contains(err.Error(), "weight must be a number") {
		t.Fatalf("string weight: err = %v", err)
	}

	// spec and path together are ambiguous.
	if _, err := ParseRecipe(`
sources:
  - spec: "a.jsonl"
    path: "b.jsonl"
process:
  - fix_unicode_mapper:
`); err == nil || !strings.Contains(err.Error(), "both spec and path") {
		t.Fatalf("spec+path: err = %v", err)
	}

	// A spec the mix grammar would misparse fails validation up front.
	r, err = ParseRecipe(`
sources:
  - spec: "data@2.jsonl"
process:
  - fix_unicode_mapper:
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "mix grammar") {
		t.Fatalf("ambiguous spec must fail validation, got %v", err)
	}
}

// TestDatasetSpecFallsBackToPath: without sources, DatasetSpec is just
// dataset_path; an explicit env input override clears the sources list.
func TestDatasetSpecFallsBackToPath(t *testing.T) {
	r := Default()
	r.DatasetPath = "data.jsonl"
	if r.DatasetSpec() != "data.jsonl" {
		t.Fatalf("DatasetSpec = %q", r.DatasetSpec())
	}
	r.Sources = []SourceSpec{{Spec: "a.jsonl", Weight: 1}}
	if got := r.DatasetSpec(); got != "mix:a.jsonl" {
		t.Fatalf("DatasetSpec = %q, want mix:a.jsonl", got)
	}
	r.ApplyEnv(func(k string) string {
		if k == "DJ_DATASET_PATH" {
			return "override.jsonl"
		}
		return ""
	})
	if len(r.Sources) != 0 || r.DatasetSpec() != "override.jsonl" {
		t.Fatalf("env override: sources=%v spec=%q", r.Sources, r.DatasetSpec())
	}
}

// TestKnownRecipeKeys: every advertised key must be accepted by FromMap —
// the list the docs-lint test checks against cannot drift from the parser.
func TestKnownRecipeKeys(t *testing.T) {
	for _, key := range KnownRecipeKeys() {
		if _, err := FromMap(map[string]any{key: nil}); err != nil {
			t.Errorf("FromMap rejects known key %q: %v", key, err)
		}
	}
	if _, err := FromMap(map[string]any{"not_a_key": 1}); err == nil {
		t.Error("unknown key must be rejected")
	}
}
