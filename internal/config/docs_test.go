package config_test

// Docs lint: the recipe/spec reference (docs/recipes.md) and the
// operator reference (internal/ops/README.md) must cover every
// registered operator and every recipe key, so the documentation cannot
// rot as the pool or the config surface grows. Registering a new op or
// adding a recipe key without documenting it fails this test.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/ops"
	_ "repro/internal/ops/all"
)

func readDoc(t *testing.T, rel string) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", rel))
	if err != nil {
		t.Fatalf("docs lint: %v (run from the repo, the reference must exist)", err)
	}
	return string(raw)
}

func TestDocsCoverEveryOperator(t *testing.T) {
	recipes := readDoc(t, filepath.Join("docs", "recipes.md"))
	opsRef := readDoc(t, filepath.Join("internal", "ops", "README.md"))
	for _, name := range ops.Names() {
		if !strings.Contains(recipes, "`"+name+"`") {
			t.Errorf("docs/recipes.md does not mention operator %q", name)
		}
		if !strings.Contains(opsRef, "`"+name+"`") {
			t.Errorf("internal/ops/README.md does not mention operator %q — regenerate with go run ./internal/ops/gen_readme.go", name)
		}
	}
}

func TestDocsCoverEveryRecipeKey(t *testing.T) {
	recipes := readDoc(t, filepath.Join("docs", "recipes.md"))
	for _, key := range config.KnownRecipeKeys() {
		if !strings.Contains(recipes, "`"+key+"`") {
			t.Errorf("docs/recipes.md does not document recipe key %q", key)
		}
	}
	// The input-spec grammar must stay documented alongside the keys.
	for _, form := range []string{"hub:", "mix:", "max_samples", ".gz", "meta.source"} {
		if !strings.Contains(recipes, form) {
			t.Errorf("docs/recipes.md does not document input-spec form %q", form)
		}
	}
}

func TestDocsCoverEveryBuiltinRecipe(t *testing.T) {
	// Built-ins are self-documenting through -list-recipes; the reference
	// only needs to name the command, but the shipped mixing recipe —
	// the subsystem's flagship — must be mentioned explicitly.
	recipes := readDoc(t, filepath.Join("docs", "recipes.md"))
	if !strings.Contains(recipes, "-list-recipes") {
		t.Error("docs/recipes.md does not point at -list-recipes")
	}
	if !strings.Contains(recipes, "pretrain-mix") {
		t.Error("docs/recipes.md does not mention the pretrain-mix built-in")
	}
	if _, err := config.BuiltinRecipe("pretrain-mix"); err != nil {
		t.Errorf("pretrain-mix built-in missing: %v", err)
	}
}
