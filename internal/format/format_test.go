package format

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadHub(t *testing.T) {
	d, err := Load("hub:wiki?docs=15&seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 15 {
		t.Fatalf("len = %d", d.Len())
	}
	if _, err := Load("hub:unknown-source"); err == nil {
		t.Fatal("unknown hub must error")
	}
	if _, err := Load("hub:wiki?docs=x"); err == nil {
		t.Fatal("bad docs must error")
	}
}

func TestLoadJSONLNativeAndForeign(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "d.jsonl", `
{"text":"native sample","meta":{"src":"a"}}
{"content":"foreign content field","url":"http://x","lang":"en"}
`)
	d, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
	if d.Samples[0].Text != "native sample" {
		t.Fatalf("text 0 = %q", d.Samples[0].Text)
	}
	if v, _ := d.Samples[0].GetString("meta.src"); v != "a" {
		t.Fatalf("meta.src = %q", v)
	}
	if d.Samples[1].Text != "foreign content field" {
		t.Fatalf("text 1 = %q", d.Samples[1].Text)
	}
	// Foreign top-level fields land in meta.
	if v, _ := d.Samples[1].GetString("meta.url"); v != "http://x" {
		t.Fatalf("meta.url = %q", v)
	}
}

func TestLoadJSONLNestedTextParts(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "d.jsonl", `{"text":{"body":"main body","abstract":"the abstract"}}`)
	d, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Samples[0].Text != "main body" {
		t.Fatalf("body = %q", d.Samples[0].Text)
	}
	if v, _ := d.Samples[0].GetString("text.abstract"); v != "the abstract" {
		t.Fatalf("abstract = %q", v)
	}
}

func TestLoadJSONArrayAndObject(t *testing.T) {
	dir := t.TempDir()
	arr := write(t, dir, "a.json", `[{"text":"one"},{"text":"two"}]`)
	d, err := Load(arr)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Samples[1].Text != "two" {
		t.Fatalf("array load = %v", d.Samples)
	}
	obj := write(t, dir, "o.json", `{"text":"solo"}`)
	d2, err := Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 1 || d2.Samples[0].Text != "solo" {
		t.Fatalf("object load = %v", d2.Samples)
	}
}

func TestLoadTxtMdCode(t *testing.T) {
	dir := t.TempDir()
	txt := write(t, dir, "doc.txt", "plain text document")
	d, _ := Load(txt)
	if d.Len() != 1 || d.Samples[0].Text != "plain text document" {
		t.Fatalf("txt = %v", d.Samples)
	}
	code := write(t, dir, "prog.py", "def f():\n    return 1\n")
	d2, _ := Load(code)
	if v, _ := d2.Samples[0].GetString("meta.suffix"); v != ".py" {
		t.Fatalf("suffix = %q", v)
	}
}

func TestLoadHTMLStripsMarkup(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "p.html", "<html><body><p>Hello <b>there</b></p></body></html>")
	d, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(d.Samples[0].Text, "<") {
		t.Fatalf("markup left: %q", d.Samples[0].Text)
	}
	if !strings.Contains(d.Samples[0].Text, "Hello there") {
		t.Fatalf("content lost: %q", d.Samples[0].Text)
	}
}

func TestLoadCSVAndTSV(t *testing.T) {
	dir := t.TempDir()
	csvPath := write(t, dir, "d.csv", "id,text,lang\n1,hello world,en\n2,second row,de\n")
	d, err := Load(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Samples[0].Text != "hello world" {
		t.Fatalf("csv = %v", d.Samples)
	}
	if v, _ := d.Samples[1].GetString("meta.lang"); v != "de" {
		t.Fatalf("meta.lang = %q", v)
	}
	tsvPath := write(t, dir, "d.tsv", "text\tscore\nrow one\t5\n")
	d2, err := Load(tsvPath)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Samples[0].Text != "row one" {
		t.Fatalf("tsv = %v", d2.Samples)
	}
}

func TestLoadDirectoryMerges(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.txt", "file a")
	write(t, dir, "sub/b.txt", "file b")
	write(t, dir, "ignore.bin", "binary")
	d, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("dir load = %d", d.Len())
	}
}

func TestLoadDirectoryEmpty(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("empty dir must error")
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.jsonl")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestExportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src, _ := Load("hub:wiki?docs=10&seed=1")
	out := filepath.Join(dir, "out.jsonl")
	if err := Export(src, out); err != nil {
		t.Fatal(err)
	}
	back, err := Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != src.Fingerprint() {
		t.Fatal("jsonl export not lossless")
	}
}

func TestExportJSONAndTxt(t *testing.T) {
	dir := t.TempDir()
	src, _ := Load("hub:wiki?docs=3&seed=1")
	jpath := filepath.Join(dir, "out.json")
	if err := Export(src, jpath); err != nil {
		t.Fatal(err)
	}
	back, err := Load(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("json round trip = %d", back.Len())
	}
	tpath := filepath.Join(dir, "out.txt")
	if err := Export(src, tpath); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(tpath)
	if !strings.Contains(string(raw), src.Samples[0].Text[:20]) {
		t.Fatal("txt export lost content")
	}
	if err := Export(src, filepath.Join(dir, "out.parquet")); err == nil {
		t.Fatal("unsupported export must error")
	}
}

func TestLoadJSONLBadLine(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "bad.jsonl", "{\"text\":\"ok\"}\n{broken\n")
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestExportSharded(t *testing.T) {
	dir := t.TempDir()
	src, _ := Load("hub:wiki?docs=25&seed=2")
	paths, err := ExportSharded(src, filepath.Join(dir, "out"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("shards = %v", paths)
	}
	// A directory load over the shards reassembles the dataset.
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 25 {
		t.Fatalf("reassembled = %d", back.Len())
	}
	if back.Fingerprint() != src.Fingerprint() {
		t.Fatal("sharded round trip not lossless")
	}
	if _, err := ExportSharded(src, filepath.Join(dir, "bad"), 0); err == nil {
		t.Fatal("shard size 0 must error")
	}
}

func TestExportShardedNamingAndBoundaries(t *testing.T) {
	dir := t.TempDir()
	src, _ := Load("hub:wiki?docs=21&seed=4")

	// Exact -NNNNN-of-MMMMM naming, in order.
	paths, err := ExportSharded(src, filepath.Join(dir, "corpus"), 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"corpus-00000-of-00003.jsonl",
		"corpus-00001-of-00003.jsonl",
		"corpus-00002-of-00003.jsonl",
	}
	if len(paths) != len(want) {
		t.Fatalf("got %d paths, want %d", len(paths), len(want))
	}
	for i, p := range paths {
		if filepath.Base(p) != want[i] {
			t.Errorf("shard %d named %q, want %q", i, filepath.Base(p), want[i])
		}
	}
	// The last shard holds the remainder.
	last, err := Load(paths[2])
	if err != nil {
		t.Fatal(err)
	}
	if last.Len() != 1 {
		t.Fatalf("last shard holds %d samples, want the 1 remainder", last.Len())
	}
	// Order and metadata survive: first sample of shard 1 is source
	// sample 10, byte for byte.
	mid, err := Load(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if mid.Samples[0].Text != src.Samples[10].Text {
		t.Fatal("shard 1 does not start at source sample 10")
	}
	if mid.Fingerprint() == "" || mid.Len() != 10 {
		t.Fatalf("shard 1 malformed: %d samples", mid.Len())
	}

	// A shard size larger than the dataset yields a single full shard.
	paths, err = ExportSharded(src, filepath.Join(dir, "one"), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || filepath.Base(paths[0]) != "one-00000-of-00001.jsonl" {
		t.Fatalf("oversize shard export = %v", paths)
	}

	// An empty dataset still writes one (empty) shard file.
	empty, _ := Load("hub:wiki?docs=1&seed=4")
	empty.Samples = nil
	paths, err = ExportSharded(empty, filepath.Join(dir, "empty"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("empty export = %v", paths)
	}
	if st, err := os.Stat(paths[0]); err != nil || st.Size() != 0 {
		t.Fatalf("empty shard file: stat=%v size mismatch", err)
	}

	// Negative shard sizes error like zero.
	if _, err := ExportSharded(src, filepath.Join(dir, "bad"), -3); err == nil {
		t.Fatal("negative shard size must error")
	}
}
