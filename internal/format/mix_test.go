package format

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseMixSpec(t *testing.T) {
	got, err := ParseMixSpec("a.jsonl@2,b.csv.gz@1,hub:wiki?docs=100&seed=3@0.5:40,c.txt")
	if err != nil {
		t.Fatal(err)
	}
	want := []WeightedSpec{
		{Spec: "a.jsonl", Weight: 2},
		{Spec: "b.csv.gz", Weight: 1},
		{Spec: "hub:wiki?docs=100&seed=3", Weight: 0.5, MaxSamples: 40},
		{Spec: "c.txt", Weight: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v\nwant %+v", got, want)
	}
	for _, bad := range []string{
		"",
		"a.jsonl,",
		"a.jsonl@notanumber",
		"a.jsonl@2:xyz",
		"a.jsonl@-1",
		"a.jsonl@0",    // explicit 0 would coerce to 1; omit instead
		"a.jsonl@NaN",  // NaN would poison every credit comparison
		"a.jsonl@+Inf", // Inf degenerates the schedule
		"mix:a.jsonl",
	} {
		if _, err := ParseMixSpec(bad); err == nil {
			t.Errorf("ParseMixSpec(%q) should error", bad)
		}
	}
}

// TestEncodeMixRoundTrip: EncodeMix output must re-parse to the same
// weighted specs — the contract that lets recipes (sources:) and the CLI
// (mix:) agree on one canonical form.
func TestEncodeMixRoundTrip(t *testing.T) {
	specs := []WeightedSpec{
		{Spec: "a.jsonl", Weight: 2},
		{Spec: "b.csv.gz"}, // zero weight encodes as default 1
		{Spec: "hub:books?docs=50", Weight: 1.5, MaxSamples: 10},
	}
	enc := EncodeMix(specs)
	body, ok := strings.CutPrefix(enc, "mix:")
	if !ok {
		t.Fatalf("EncodeMix = %q, want mix: prefix", enc)
	}
	back, err := ParseMixSpec(body)
	if err != nil {
		t.Fatal(err)
	}
	want := []WeightedSpec{
		{Spec: "a.jsonl", Weight: 2},
		{Spec: "b.csv.gz", Weight: 1},
		{Spec: "hub:books?docs=50", Weight: 1.5, MaxSamples: 10},
	}
	if !reflect.DeepEqual(back, want) {
		t.Fatalf("round trip: got %+v\nwant %+v", back, want)
	}
}

// TestCheckEncodable: specs the mix grammar would misparse are rejected
// up front; ordinary specs round-trip.
func TestCheckEncodable(t *testing.T) {
	for _, ok := range []WeightedSpec{
		{Spec: "a.jsonl", Weight: 2},
		{Spec: "hub:wiki?docs=10&seed=1", MaxSamples: 5},
	} {
		if err := CheckEncodable(ok); err != nil {
			t.Errorf("CheckEncodable(%+v) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []WeightedSpec{
		{Spec: "data@2.jsonl"},        // '@' tail does not re-parse
		{Spec: "data@v2.dir/x.jsonl"}, // same: '@' is reserved in the grammar
		{Spec: "a,b.jsonl"},           // comma is the item separator
		{Spec: "shard@3"},             // trailing @<number> reads as a weight
		{Spec: ""},                    // empty
		{Spec: "mix:a.jsonl"},         // nesting
		{Spec: "x", Weight: -1},       // negative weight
	} {
		if err := CheckEncodable(bad); err == nil {
			t.Errorf("CheckEncodable(%+v) should error", bad)
		}
	}
}

func writeJSONLFile(t *testing.T, path string, texts ...string) {
	t.Helper()
	var b strings.Builder
	for _, txt := range texts {
		b.WriteString(`{"text":"` + txt + `"}` + "\n")
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMixInterleavesByWeight: with weights 2:1 the smooth weighted
// round-robin emits a b a | a b a | ... and tags provenance.
func TestMixInterleavesByWeight(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	writeJSONLFile(t, a, "a0", "a1", "a2", "a3")
	writeJSONLFile(t, b, "b0", "b1")

	d, err := Load("mix:" + a + "@2," + b + "@1")
	if err != nil {
		t.Fatal(err)
	}
	var texts, sources []string
	for _, s := range d.Samples {
		texts = append(texts, s.Text)
		src, _ := s.Meta.Get("source")
		sources = append(sources, src.(string))
	}
	wantTexts := []string{"a0", "b0", "a1", "a2", "b1", "a3"}
	if !reflect.DeepEqual(texts, wantTexts) {
		t.Fatalf("interleave order %v, want %v", texts, wantTexts)
	}
	for i, s := range sources {
		want := a
		if strings.HasPrefix(texts[i], "b") {
			want = b
		}
		if s != want {
			t.Errorf("sample %d (%s) tagged %q, want %q", i, texts[i], s, want)
		}
	}
}

// TestMixDeterminism: the same spec drains to the identical sample
// sequence every time, including hub constituents.
func TestMixDeterminism(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	writeJSONLFile(t, a, "a0", "a1", "a2", "a3", "a4", "a5", "a6")
	spec := "mix:" + a + "@1.5,hub:wiki?docs=9&seed=4@1"

	first, err := Load(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Load(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Len() != 16 {
		t.Fatalf("mix yielded %d samples, want 16", first.Len())
	}
	if first.Fingerprint() != second.Fingerprint() {
		t.Fatal("mixing is not deterministic across opens")
	}
}

// TestMixMaxSamples: a capped constituent leaves the rotation after its
// quota; the rest of the stream continues.
func TestMixMaxSamples(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	writeJSONLFile(t, a, "a0", "a1", "a2", "a3", "a4")
	writeJSONLFile(t, b, "b0", "b1", "b2", "b3", "b4")

	d, err := Load("mix:" + a + "@1:2," + b + "@1")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, s := range d.Samples {
		src, _ := s.Meta.Get("source")
		counts[src.(string)]++
	}
	if counts[a] != 2 || counts[b] != 5 {
		t.Fatalf("counts = %v, want a:2 b:5", counts)
	}
}

// TestMixOverGzippedCSVAndJSONL is the acceptance-shaped unit: a mixture
// of a gzipped CSV and a plain JSONL drains identically through the batch
// Load and an incremental Source.
func TestMixOverGzippedCSVAndJSONL(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	writeJSONLFile(t, a, "j0", "j1", "j2")
	gzWrite(t, filepath.Join(dir, "b.csv.gz"), "text,tag\nc0,x\nc1,y\n")

	spec := "mix:" + a + "@2," + filepath.Join(dir, "b.csv.gz") + "@1"
	batch, err := Load(spec)
	if err != nil {
		t.Fatal(err)
	}
	src, err := OpenSource(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	streamed, err := Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Len() != 5 || batch.Fingerprint() != streamed.Fingerprint() {
		t.Fatalf("mixed multi-format load diverges (batch %d, stream %d)", batch.Len(), streamed.Len())
	}
	// CSV meta columns and provenance tags coexist.
	for _, s := range batch.Samples {
		if _, ok := s.Meta.Get("source"); !ok {
			t.Fatalf("sample %q missing provenance tag", s.Text)
		}
	}
}
