// Weighted multi-source mixing (paper §3.1: multiple corpora are mixed
// by weight before the op chain runs). The mixer is a Source over other
// Sources: it interleaves constituent streams deterministically in
// proportion to their weights, tags every sample's provenance, and stays
// incremental — a constituent is only read when its turn comes, so mixing
// N streaming files still holds O(1) samples outside the consumer.
package format

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/sample"
)

// WeightedSpec is one constituent of a mixed input: a dataset spec (any
// form OpenSource accepts except "mix:" itself — mixes do not nest), a
// relative sampling weight, and an optional cap on the samples taken.
type WeightedSpec struct {
	// Spec is the constituent dataset spec (file, dir, glob, hub:).
	Spec string
	// Weight is the relative interleave weight (0 means 1).
	Weight float64
	// MaxSamples caps the samples taken from this constituent (0 = all).
	MaxSamples int
}

// ParseMixSpec parses the body of a "mix:" spec — a comma-separated list
// of items of the form
//
//	spec[@weight[:max_samples]]
//
// e.g. "a.jsonl@2,b.csv.gz@1,hub:wiki?docs=100@0.5:40". The weight
// defaults to 1. The '@' before the weight is reserved: a path whose last
// '@'-suffix does not parse as a weight is an error. Commas cannot appear
// inside item specs.
func ParseMixSpec(body string) ([]WeightedSpec, error) {
	if strings.TrimSpace(body) == "" {
		return nil, fmt.Errorf("format: empty mix spec")
	}
	items := strings.Split(body, ",")
	specs := make([]WeightedSpec, 0, len(items))
	for _, item := range items {
		item = strings.TrimSpace(item)
		if item == "" {
			return nil, fmt.Errorf("format: empty item in mix spec %q", body)
		}
		ws := WeightedSpec{Spec: item, Weight: 1}
		if i := strings.LastIndexByte(item, '@'); i >= 0 {
			tail := item[i+1:]
			maxPart := ""
			if j := strings.IndexByte(tail, ':'); j >= 0 {
				tail, maxPart = tail[:j], tail[j+1:]
			}
			w, err := strconv.ParseFloat(tail, 64)
			if err != nil {
				return nil, fmt.Errorf("format: mix item %q: bad weight %q", item, tail)
			}
			if w == 0 {
				// An explicit @0 would silently coerce to the default 1
				// (the zero-value convention); excluding a source is done
				// by omitting it, so reject the ambiguity.
				return nil, fmt.Errorf("format: mix item %q: weight 0 — omit the source instead", item)
			}
			ws.Spec, ws.Weight = item[:i], w
			if maxPart != "" {
				n, err := strconv.Atoi(maxPart)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("format: mix item %q: bad max_samples %q", item, maxPart)
				}
				ws.MaxSamples = n
			}
		}
		if err := validateWeighted(ws); err != nil {
			return nil, err
		}
		specs = append(specs, ws)
	}
	return specs, nil
}

// EncodeMix renders weighted specs back into the canonical "mix:" string
// ParseMixSpec accepts. It is how recipes with a sources: list and both
// execution backends agree on one input spec.
func EncodeMix(specs []WeightedSpec) string {
	parts := make([]string, len(specs))
	for i, ws := range specs {
		p := ws.Spec
		w := ws.Weight
		if w == 0 {
			w = 1
		}
		if w != 1 || ws.MaxSamples > 0 {
			p += "@" + strconv.FormatFloat(w, 'g', -1, 64)
			if ws.MaxSamples > 0 {
				p += ":" + strconv.Itoa(ws.MaxSamples)
			}
		}
		parts[i] = p
	}
	return "mix:" + strings.Join(parts, ",")
}

// CheckEncodable reports whether ws survives the mix-spec string grammar
// unchanged — recipes with a sources: list are canonically encoded via
// EncodeMix, so a spec the grammar would misparse (a ',' anywhere, or a
// trailing '@<number>' segment in the path) must be rejected up front
// with a clear error instead of loading the wrong data.
func CheckEncodable(ws WeightedSpec) error {
	if err := validateWeighted(ws); err != nil {
		return err
	}
	if strings.Contains(ws.Spec, ",") {
		return fmt.Errorf("format: source spec %q contains ',', which the mix grammar reserves; rename the file", ws.Spec)
	}
	back, err := ParseMixSpec(strings.TrimPrefix(EncodeMix([]WeightedSpec{ws}), "mix:"))
	w := ws.Weight
	if w == 0 {
		w = 1
	}
	if err != nil || len(back) != 1 || back[0].Spec != ws.Spec ||
		back[0].Weight != w || back[0].MaxSamples != ws.MaxSamples {
		return fmt.Errorf("format: source spec %q is ambiguous under the mix grammar (a trailing @<number> segment reads as a weight); rename the file", ws.Spec)
	}
	return nil
}

func validateWeighted(ws WeightedSpec) error {
	if ws.Spec == "" {
		return fmt.Errorf("format: mix item has an empty spec")
	}
	if strings.HasPrefix(ws.Spec, "mix:") {
		return fmt.Errorf("format: mix specs do not nest (%q)", ws.Spec)
	}
	if ws.Weight < 0 || math.IsNaN(ws.Weight) || math.IsInf(ws.Weight, 0) {
		// NaN poisons every credit comparison (always false → no mixing)
		// and Inf degenerates the schedule, so both are rejected with
		// negatives rather than silently concatenating.
		return fmt.Errorf("format: mix item %q: weight must be a finite non-negative number, got %v", ws.Spec, ws.Weight)
	}
	if ws.MaxSamples < 0 {
		return fmt.Errorf("format: mix item %q: negative max_samples %d", ws.Spec, ws.MaxSamples)
	}
	return nil
}

// mixEntry is one live constituent of a MixSource.
type mixEntry struct {
	spec   string
	src    Source
	weight float64
	credit float64
	taken  int
	max    int
	done   bool
}

// MixSource interleaves constituent sources by smooth weighted
// round-robin: each turn every live entry gains its weight in credit, the
// richest entry (ties to the earliest) emits one sample and pays back the
// total live weight. The schedule is a pure function of the weights —
// with weights 2:1 the stream goes a b a, a b a, ... — so mixing is fully
// deterministic and both backends see the identical sequence. Exhausted
// or capped entries leave the rotation and the remaining weights keep
// their relative proportions.
//
// Every emitted sample is provenance-tagged: meta.source is set to the
// constituent's spec string, overwriting any loader-assigned value.
type MixSource struct {
	entries []*mixEntry
}

// OpenMix opens every weighted spec and returns their interleaved Source.
// On error, constituents already opened are closed.
func OpenMix(specs []WeightedSpec) (*MixSource, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("format: empty mix spec")
	}
	m := &MixSource{}
	for _, ws := range specs {
		if err := validateWeighted(ws); err != nil {
			m.Close()
			return nil, err
		}
		src, err := OpenSource(ws.Spec)
		if err != nil {
			m.Close()
			return nil, err
		}
		w := ws.Weight
		if w == 0 {
			w = 1
		}
		m.entries = append(m.entries, &mixEntry{
			spec: ws.Spec, src: src, weight: w, max: ws.MaxSamples,
		})
	}
	return m, nil
}

// Next returns the next sample of the interleaved stream, tagged with its
// provenance, or io.EOF once every constituent is exhausted.
func (m *MixSource) Next() (*sample.Sample, error) {
	for {
		total := 0.0
		var pick *mixEntry
		for _, e := range m.entries {
			if e.done || (e.max > 0 && e.taken >= e.max) {
				continue
			}
			total += e.weight
			e.credit += e.weight
			if pick == nil || e.credit > pick.credit {
				pick = e
			}
		}
		if pick == nil {
			return nil, io.EOF
		}
		pick.credit -= total
		s, err := pick.src.Next()
		if err == io.EOF {
			pick.done = true
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("format: mix source %s: %w", pick.spec, err)
		}
		pick.taken++
		s.Meta = s.Meta.Set("source", pick.spec)
		return s, nil
	}
}

// Close closes every constituent, returning the first error.
func (m *MixSource) Close() error {
	var first error
	for _, e := range m.entries {
		if err := e.src.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
