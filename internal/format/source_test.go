package format

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// gzWrite writes content to path, gzip-compressed.
func gzWrite(t *testing.T, path, content string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveExt(t *testing.T) {
	cases := []struct {
		path string
		ext  string
		gz   bool
	}{
		{"a.jsonl", ".jsonl", false},
		{"a.jsonl.gz", ".jsonl", true},
		{"dir/b.CSV.GZ", ".csv", true},
		{"noext", "", false},
		{"x.gz", "", true},
	}
	for _, c := range cases {
		ext, gz := effectiveExt(c.path)
		if ext != c.ext || gz != c.gz {
			t.Errorf("effectiveExt(%q) = (%q, %v), want (%q, %v)", c.path, ext, gz, c.ext, c.gz)
		}
	}
}

// TestGzipTransparent: a gzipped file must load identically to its plain
// twin, for both line-oriented (jsonl) and record-oriented (csv) formats.
func TestGzipTransparent(t *testing.T) {
	dir := t.TempDir()
	jsonl := "{\"text\":\"alpha beta\",\"meta\":{\"lang\":\"en\"}}\n{\"text\":\"gamma\"}\n"
	csvData := "text,topic\n\"first, doc\",news\n\"multi\nline\",sport\n"

	plainJ := filepath.Join(dir, "a.jsonl")
	if err := os.WriteFile(plainJ, []byte(jsonl), 0o644); err != nil {
		t.Fatal(err)
	}
	gzWrite(t, filepath.Join(dir, "a2.jsonl.gz"), jsonl)
	plainC := filepath.Join(dir, "b.csv")
	if err := os.WriteFile(plainC, []byte(csvData), 0o644); err != nil {
		t.Fatal(err)
	}
	gzWrite(t, filepath.Join(dir, "b2.csv.gz"), csvData)

	for _, pair := range [][2]string{
		{plainJ, filepath.Join(dir, "a2.jsonl.gz")},
		{plainC, filepath.Join(dir, "b2.csv.gz")},
	} {
		plain, err := Load(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		zipped, err := Load(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if plain.Fingerprint() != zipped.Fingerprint() {
			t.Errorf("%s: gzip load diverges from plain load", pair[1])
		}
		if plain.Len() != 2 {
			t.Errorf("%s: got %d samples, want 2", pair[0], plain.Len())
		}
	}
}

// TestJSONArrayStreams: the .json reader must yield array elements
// incrementally and agree with the batch load.
func TestJSONArrayStreams(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "arr.json")
	raw := `[{"text": "one"}, {"text": "two", "meta": {"k": "v"}}, {"content": "three"}]`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	d, err := Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Fingerprint() != batch.Fingerprint() || d.Len() != 3 {
		t.Fatalf("json array stream %d samples, batch %d", d.Len(), batch.Len())
	}
}

// TestJSONNullAndEmpty: a bare null (the old export of an empty dataset)
// loads as an empty dataset; an empty .json file errors.
func TestJSONNullAndEmpty(t *testing.T) {
	dir := t.TempDir()
	nullPath := filepath.Join(dir, "null.json")
	if err := os.WriteFile(nullPath, []byte("null\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Load(nullPath)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("null json loaded %d samples, want 0", d.Len())
	}
	emptyPath := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(emptyPath, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(emptyPath); err == nil {
		t.Fatal("empty .json must error")
	}
}

// TestExportEmptyJSONRoundTrip: exporting an empty dataset to .json and
// reloading must give an empty dataset, not one phantom sample.
func TestExportEmptyJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := Export(dataset.New(nil), path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Fatalf("empty export reloaded as %d samples, want 0", back.Len())
	}
}

func TestGlobSpec(t *testing.T) {
	dir := t.TempDir()
	for i, name := range []string{"a.jsonl", "b.jsonl", "c.bin"} {
		content := "{\"text\":\"doc " + string(rune('0'+i)) + "\"}\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A directory named like a data file must not match the glob.
	if err := os.Mkdir(filepath.Join(dir, "folder.jsonl"), 0o755); err != nil {
		t.Fatal(err)
	}
	d, err := Load(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("glob load = %d samples, want 2", d.Len())
	}
	if _, err := Load(filepath.Join(dir, "*.parquet")); err == nil {
		t.Fatal("glob with no supported matches must error")
	}
}

// TestDirectoryMixedFormats: a directory holding different formats loads
// every supported file in sorted order; unsupported files are skipped.
func TestDirectoryMixedFormats(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.jsonl"), []byte("{\"text\":\"j\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.csv"), []byte("text\nrow one\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	gzWrite(t, filepath.Join(dir, "c.txt.gz"), "plain text doc")
	if err := os.WriteFile(filepath.Join(dir, "skip.bin"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("mixed dir load = %d samples, want 3", d.Len())
	}
	texts := []string{d.Samples[0].Text, d.Samples[1].Text, d.Samples[2].Text}
	want := []string{"j", "row one", "plain text doc"}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("sample %d text %q, want %q (sorted file order)", i, texts[i], want[i])
		}
	}
}

// TestSourceMatchesLoadEveryFormat: for each file format, draining the
// incremental Source must be byte-equivalent to the batch Load.
func TestSourceMatchesLoadEveryFormat(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"a.jsonl": "{\"text\":\"one\"}\n{\"text\":\"two\",\"stats\":{\"s\":1}}\n",
		"b.json":  `[{"text":"arr"},{"text":"ay"}]`,
		"c.csv":   "text,k\nv1,m1\nv2,m2\n",
		"d.tsv":   "text\tk\nv1\tm1\n",
		"e.txt":   "whole file",
		"f.md":    "# heading\nbody",
		"g.html":  "<p>markup</p>",
		"h.py":    "print('code')",
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		batch, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		src, err := OpenSource(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		streamed, err := Drain(src)
		src.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if batch.Fingerprint() != streamed.Fingerprint() {
			t.Errorf("%s: source drain diverges from Load", name)
		}
	}
}

// TestJSONTrailingContentErrors: a .json file with content after the
// document (usually JSONL mislabeled as .json) must error, not silently
// load its first value.
func TestJSONTrailingContentErrors(t *testing.T) {
	dir := t.TempDir()
	for name, tc := range map[string]struct{ content, want string }{
		// Concatenated JSON values get the descriptive rename hint;
		// outright garbage surfaces the decoder's syntax error.
		"concat.json":   {"{\"text\":\"a\"}\n{\"text\":\"b\"}\n", "trailing content"},
		"arrtrail.json": {`[{"text":"a"}] garbage`, "invalid character"},
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q error", name, err, tc.want)
		}
	}
}

// TestLiteralGlobCharsInFilename: an existing file whose name contains
// glob metacharacters loads directly; patterns only apply to paths that
// do not exist.
func TestLiteralGlobCharsInFilename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data[1].jsonl")
	if err := os.WriteFile(path, []byte("{\"text\":\"bracketed\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Samples[0].Text != "bracketed" {
		t.Fatalf("literal-glob filename loaded %d samples", d.Len())
	}
}

func TestOpenFilesRejectsUnsupported(t *testing.T) {
	if _, err := OpenFiles(); err == nil || !strings.Contains(err.Error(), "no input files") {
		t.Fatalf("err = %v", err)
	}
	if _, err := OpenFiles("x.parquet"); err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("err = %v", err)
	}
	// A gzipped unsupported type names the inner extension, not ".gz".
	if _, err := OpenFiles("x.parquet.gz"); err == nil || !strings.Contains(err.Error(), `".parquet"`) {
		t.Fatalf("gz err = %v", err)
	}
}

// TestJSONTruncatedGzipSurfacesIOError: a corrupt gzip tail after a
// complete JSON document must surface the gzip error, not be
// misreported as trailing content.
func TestJSONTruncatedGzipSurfacesIOError(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.json.gz")
	gzWrite(t, full, `{"text":"doc"}`)
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.json.gz")
	if err := os.WriteFile(trunc, raw[:len(raw)-4], 0o644); err != nil { // drop checksum bytes
		t.Fatal(err)
	}
	_, err = Load(trunc)
	if err == nil {
		t.Fatal("truncated gzip must error")
	}
	if strings.Contains(err.Error(), "trailing content") {
		t.Fatalf("I/O error misreported as trailing content: %v", err)
	}
}
