package format

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/sample"
	"repro/internal/text"
)

// Source is the incremental reader every input flows through: it yields
// unified samples one at a time and returns io.EOF when the input is
// exhausted. File-backed sources read with bounded buffers — never the
// whole file — so peak memory of a streaming run stays independent of
// corpus size; in-memory sources (hub corpora) iterate an existing
// dataset. Both execution backends consume the same Source for the same
// spec, which is what makes their sample streams identical.
type Source interface {
	// Next returns the next sample, or io.EOF when the input is exhausted.
	Next() (*sample.Sample, error)
	// Close releases underlying resources.
	Close() error
}

// BatchReader is implemented by sources that can deliver many samples
// per call, amortizing the per-sample interface dispatch and letting the
// reader reuse its decode scratch across the whole batch. ReadBatch is
// the generic entry point; sources without the method are driven one
// Next at a time.
type BatchReader interface {
	// NextBatch appends up to max samples to dst and returns the extended
	// slice. It returns io.EOF only when no samples were appended and the
	// input is exhausted.
	NextBatch(dst []*sample.Sample, max int) ([]*sample.Sample, error)
}

// ReadBatch pulls up to max samples from src into dst (appending), using
// the source's batch path when it has one. It returns io.EOF only when
// nothing was appended and the input is exhausted.
func ReadBatch(src Source, dst []*sample.Sample, max int) ([]*sample.Sample, error) {
	if br, ok := src.(BatchReader); ok {
		return br.NextBatch(dst, max)
	}
	n := 0
	for n < max {
		s, err := src.Next()
		if err == io.EOF {
			if n == 0 {
				return dst, io.EOF
			}
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
		dst = append(dst, s)
		n++
	}
	return dst, nil
}

// OpenSource resolves a dataset spec into a streaming Source:
//
//   - "mix:ITEM,ITEM,..." → weighted multi-source interleaver (see
//     ParseMixSpec); each ITEM is itself any of the forms below
//   - "hub:<name>[?docs=N&seed=S]" → built-in synthetic corpus
//   - a glob pattern ("data/*.jsonl.gz") → every supported match, sorted
//   - a directory → every supported file inside, merged in sorted order
//   - a file path → read according to its extension, with a trailing
//     ".gz" decompressed transparently (data.csv.gz reads as csv)
//
// Supported extensions: .jsonl, .json, .csv, .tsv, .txt, .md, .html,
// .htm, the code suffixes (.py, .go, ...), each optionally + ".gz".
func OpenSource(spec string) (Source, error) {
	if rest, ok := strings.CutPrefix(spec, "mix:"); ok {
		specs, err := ParseMixSpec(rest)
		if err != nil {
			return nil, err
		}
		return OpenMix(specs)
	}
	if rest, ok := strings.CutPrefix(spec, "hub:"); ok {
		d, err := corpus.FromSpec(rest)
		if err != nil {
			return nil, fmt.Errorf("format: %w", err)
		}
		return NewDatasetSource(d), nil
	}
	info, err := os.Stat(spec)
	if err != nil {
		// Not an existing path: try it as a glob pattern. An existing
		// file whose name contains literal glob metacharacters is served
		// by the stat above, never pattern-matched.
		if strings.ContainsAny(spec, "*?[") {
			matches, gerr := filepath.Glob(spec)
			if gerr != nil {
				return nil, fmt.Errorf("format: bad glob %q: %w", spec, gerr)
			}
			var files []string
			for _, m := range matches {
				ext, _ := effectiveExt(m)
				if !supported(ext) {
					continue
				}
				// A directory whose name ends in a supported extension
				// (e.g. a per-day shard folder "old.csv/") must not be
				// opened as a data file.
				if fi, err := os.Stat(m); err != nil || fi.IsDir() {
					continue
				}
				files = append(files, m)
			}
			if len(files) == 0 {
				return nil, fmt.Errorf("format: glob %q matches no supported files", spec)
			}
			sort.Strings(files)
			return OpenFiles(files...)
		}
		return nil, fmt.Errorf("format: %w", err)
	}
	if info.IsDir() {
		files, err := supportedFilesIn(spec)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("format: no supported files under %s", spec)
		}
		return OpenFiles(files...)
	}
	return OpenFiles(spec)
}

// OpenFiles returns a Source reading the given files back-to-back as one
// logical stream, each according to its extension. Files are opened
// lazily, one at a time.
func OpenFiles(paths ...string) (Source, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("format: no input files")
	}
	for _, p := range paths {
		if ext, gz := effectiveExt(p); !supported(ext) {
			if gz {
				return nil, fmt.Errorf("format: unsupported file type %q (under the transparent .gz)", ext)
			}
			return nil, fmt.Errorf("format: unsupported file type %q", filepath.Ext(p))
		}
	}
	return &filesSource{paths: paths}, nil
}

// effectiveExt returns the lowercased extension that decides how path is
// parsed, and whether the file is gzip-compressed (a trailing ".gz" is
// transparent: "data.csv.gz" has effective extension ".csv").
func effectiveExt(path string) (ext string, gzipped bool) {
	ext = strings.ToLower(filepath.Ext(path))
	if ext == ".gz" {
		gzipped = true
		ext = strings.ToLower(filepath.Ext(strings.TrimSuffix(path, filepath.Ext(path))))
	}
	return ext, gzipped
}

// supportedFilesIn lists the supported files under dir, sorted.
func supportedFilesIn(dir string) ([]string, error) {
	var files []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if ext, _ := effectiveExt(path); supported(ext) {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	return files, nil
}

// filesSource reads a list of files sequentially, opening each lazily.
type filesSource struct {
	paths []string
	idx   int
	cur   Source
}

func (f *filesSource) Next() (*sample.Sample, error) {
	for {
		if f.cur == nil {
			if f.idx >= len(f.paths) {
				return nil, io.EOF
			}
			src, err := openFile(f.paths[f.idx])
			if err != nil {
				return nil, err
			}
			f.cur = src
		}
		s, err := f.cur.Next()
		if err == io.EOF {
			f.cur.Close()
			f.cur = nil
			f.idx++
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("format: %s: %w", f.paths[f.idx], err)
		}
		return s, nil
	}
}

// NextBatch implements BatchReader, delegating to the current file's
// batch path and rolling over file boundaries until the batch fills or
// the input is exhausted.
func (f *filesSource) NextBatch(dst []*sample.Sample, max int) ([]*sample.Sample, error) {
	start := len(dst)
	for len(dst)-start < max {
		if f.cur == nil {
			if f.idx >= len(f.paths) {
				if len(dst) == start {
					return dst, io.EOF
				}
				return dst, nil
			}
			src, err := openFile(f.paths[f.idx])
			if err != nil {
				return dst, err
			}
			f.cur = src
		}
		var err error
		dst, err = ReadBatch(f.cur, dst, max-(len(dst)-start))
		if err == io.EOF {
			f.cur.Close()
			f.cur = nil
			f.idx++
			continue
		}
		if err != nil {
			return dst, fmt.Errorf("format: %s: %w", f.paths[f.idx], err)
		}
	}
	return dst, nil
}

func (f *filesSource) Close() error {
	if f.cur != nil {
		err := f.cur.Close()
		f.cur = nil
		return err
	}
	return nil
}

// openFile opens one file as a Source according to its effective
// extension, layering gzip decompression under the parser when the path
// ends in ".gz".
func openFile(path string) (Source, error) {
	ext, gzipped := effectiveExt(path)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("format: %w", err)
	}
	var r io.Reader = f
	closer := io.Closer(f)
	if gzipped {
		zr, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("format: %s: %w", path, err)
		}
		r = zr
		closer = stackedCloser{zr, f}
	}
	switch ext {
	case ".jsonl":
		return newJSONLReader(r, closer), nil
	case ".json":
		return newJSONReader(r, closer), nil
	case ".csv":
		return newCSVReader(r, closer, ','), nil
	case ".tsv":
		return newCSVReader(r, closer, '\t'), nil
	case ".html", ".htm":
		return newDocReader(r, closer, path, true, ""), nil
	case ".txt", ".md":
		return newDocReader(r, closer, path, false, ""), nil
	}
	if codeSuffixes[ext] {
		return newDocReader(r, closer, path, false, ext), nil
	}
	closer.Close()
	if gzipped {
		return nil, fmt.Errorf("format: unsupported file type %q (under the transparent .gz)", ext)
	}
	return nil, fmt.Errorf("format: unsupported file type %q", filepath.Ext(path))
}

// stackedCloser closes a decompressor, then the file under it.
type stackedCloser struct{ outer, inner io.Closer }

func (c stackedCloser) Close() error {
	err := c.outer.Close()
	if err2 := c.inner.Close(); err == nil {
		err = err2
	}
	return err
}

// jsonlReader decodes one JSON object per line through SampleFromJSON —
// the exact unification the whole system shares — with a bounded buffer.
// Lines are decoded straight from the scanner's byte buffer (no string
// copy). Samples are allocated individually, never from shared blocks:
// a kept sample must not pin filtered-out siblings (and their texts)
// alive.
type jsonlReader struct {
	scan   *bufio.Scanner
	closer io.Closer
	lineNo int
}

func newJSONLReader(r io.Reader, closer io.Closer) *jsonlReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	return &jsonlReader{scan: sc, closer: closer}
}

func (j *jsonlReader) Next() (*sample.Sample, error) {
	for j.scan.Scan() {
		j.lineNo++
		line := bytes.TrimSpace(j.scan.Bytes())
		if len(line) == 0 {
			continue
		}
		s := &sample.Sample{}
		if err := sampleFromJSONInto(line, s); err != nil {
			return nil, fmt.Errorf("line %d: %w", j.lineNo, err)
		}
		return s, nil
	}
	if err := j.scan.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

func (j *jsonlReader) Close() error { return j.closer.Close() }

// jsonReader streams a .json document: a top-level array is decoded
// element by element (the array is never fully resident), a single
// object yields one sample, and a bare null yields none.
type jsonReader struct {
	br      *bufio.Reader
	dec     *json.Decoder
	closer  io.Closer
	started bool
	array   bool
	done    bool
	idx     int
}

func newJSONReader(r io.Reader, closer io.Closer) *jsonReader {
	br := bufio.NewReaderSize(r, 1<<16)
	return &jsonReader{br: br, dec: json.NewDecoder(br), closer: closer}
}

func (j *jsonReader) start() error {
	j.started = true
	for {
		b, err := j.br.ReadByte()
		if err == io.EOF {
			return fmt.Errorf("empty JSON document")
		}
		if err != nil {
			return err
		}
		if b == ' ' || b == '\t' || b == '\n' || b == '\r' {
			continue
		}
		j.br.UnreadByte()
		j.array = b == '['
		break
	}
	if j.array {
		if _, err := j.dec.Token(); err != nil { // consume '['
			return err
		}
	}
	return nil
}

func (j *jsonReader) Next() (*sample.Sample, error) {
	if j.done {
		return nil, io.EOF
	}
	if !j.started {
		if err := j.start(); err != nil {
			return nil, err
		}
	}
	if j.array {
		if !j.dec.More() {
			j.done = true
			if _, err := j.dec.Token(); err != nil { // consume ']'
				return nil, err
			}
			if err := j.checkTrailing(); err != nil {
				return nil, err
			}
			return nil, io.EOF
		}
		var raw json.RawMessage
		if err := j.dec.Decode(&raw); err != nil {
			return nil, err
		}
		s, err := SampleFromJSON(raw)
		if err != nil {
			return nil, fmt.Errorf("item %d: %w", j.idx, err)
		}
		j.idx++
		return s, nil
	}
	j.done = true
	var raw json.RawMessage
	if err := j.dec.Decode(&raw); err != nil {
		return nil, err
	}
	if err := j.checkTrailing(); err != nil {
		return nil, err
	}
	if string(raw) == "null" {
		return nil, io.EOF
	}
	return SampleFromJSON(raw)
}

// checkTrailing rejects content after the document: a .json file holding
// concatenated values (often JSONL mislabeled as .json) must error, not
// silently load its first value.
func (j *jsonReader) checkTrailing() error {
	_, err := j.dec.Token()
	switch {
	case err == io.EOF:
		return nil
	case err == nil:
		return fmt.Errorf("trailing content after JSON document (JSONL data should use a .jsonl extension)")
	default:
		// A real I/O or syntax error (e.g. a truncated gzip stream), not
		// extra content — surface it as-is.
		return err
	}
}

func (j *jsonReader) Close() error { return j.closer.Close() }

// csvReader streams rows: the header row maps columns to sample fields —
// the "text" column (or the first) becomes the text, others become meta.
type csvReader struct {
	r       *csv.Reader
	closer  io.Closer
	header  []string
	textCol int
	started bool
}

func newCSVReader(r io.Reader, closer io.Closer, sep rune) *csvReader {
	cr := csv.NewReader(r)
	cr.Comma = sep
	cr.FieldsPerRecord = -1
	return &csvReader{r: cr, closer: closer}
}

func (c *csvReader) Next() (*sample.Sample, error) {
	if !c.started {
		c.started = true
		header, err := c.r.Read()
		if err == io.EOF {
			return nil, io.EOF // empty file: zero samples
		}
		if err != nil {
			return nil, err
		}
		c.header = header
		for i, h := range header {
			if strings.EqualFold(strings.TrimSpace(h), "text") {
				c.textCol = i
				break
			}
		}
	}
	row, err := c.r.Read()
	if err != nil {
		return nil, err // io.EOF included
	}
	s := &sample.Sample{}
	for i, cell := range row {
		if i >= len(c.header) {
			break
		}
		if i == c.textCol {
			s.Text = cell
			continue
		}
		s.Meta = s.Meta.Set(strings.TrimSpace(c.header[i]), cell)
	}
	return s, nil
}

func (c *csvReader) Close() error { return c.closer.Close() }

// docReader yields a whole file as one sample (txt/md/html/code). The
// single sample necessarily holds the full content, so the read is not
// incremental — but it is bounded by that one document's size.
type docReader struct {
	r         io.Reader
	closer    io.Closer
	path      string
	stripHTML bool
	suffix    string
	done      bool
}

func newDocReader(r io.Reader, closer io.Closer, path string, stripHTML bool, suffix string) *docReader {
	return &docReader{r: r, closer: closer, path: path, stripHTML: stripHTML, suffix: suffix}
}

func (d *docReader) Next() (*sample.Sample, error) {
	if d.done {
		return nil, io.EOF
	}
	d.done = true
	raw, err := io.ReadAll(d.r)
	if err != nil {
		return nil, err
	}
	content := string(raw)
	if d.stripHTML {
		content = text.StripHTML(content)
	}
	s := sample.New(content)
	s.SetString("meta.file", filepath.Base(d.path))
	if d.suffix != "" {
		s.SetString("meta.suffix", d.suffix)
	}
	return s, nil
}

func (d *docReader) Close() error { return d.closer.Close() }

// DatasetSource iterates an in-memory dataset as a Source — the adapter
// for inputs without an incremental representation (hub corpora,
// already-loaded datasets). Samples are shared, not copied.
type DatasetSource struct {
	samples []*sample.Sample
	pos     int
}

// NewDatasetSource wraps d as a Source.
func NewDatasetSource(d *dataset.Dataset) *DatasetSource {
	return &DatasetSource{samples: d.Samples}
}

// Next returns the next sample of the dataset.
func (ds *DatasetSource) Next() (*sample.Sample, error) {
	if ds.pos >= len(ds.samples) {
		return nil, io.EOF
	}
	s := ds.samples[ds.pos]
	ds.pos++
	return s, nil
}

// NextBatch implements BatchReader with one bulk copy.
func (ds *DatasetSource) NextBatch(dst []*sample.Sample, max int) ([]*sample.Sample, error) {
	if ds.pos >= len(ds.samples) {
		return dst, io.EOF
	}
	hi := ds.pos + max
	if hi > len(ds.samples) {
		hi = len(ds.samples)
	}
	dst = append(dst, ds.samples[ds.pos:hi]...)
	ds.pos = hi
	return dst, nil
}

// Close is a no-op for in-memory sources.
func (ds *DatasetSource) Close() error { return nil }

// Drain reads src to exhaustion into a batch dataset, batch-granular.
// It does not close the source.
func Drain(src Source) (*dataset.Dataset, error) {
	var samples []*sample.Sample
	for {
		var err error
		n := len(samples)
		samples, err = ReadBatch(src, samples, 1024)
		if err == io.EOF {
			return dataset.New(samples), nil
		}
		if err != nil {
			return nil, err
		}
		if len(samples) == n {
			// Defensive: a source returning neither progress nor EOF
			// would otherwise spin.
			return dataset.New(samples), nil
		}
	}
}
