// Package format implements the Formatter layer of Table 1: loading and
// unifying heterogeneous inputs — JSONL, JSON, txt, csv/tsv, markdown,
// HTML, source code files, directories of any of those, and the "hub:"
// scheme resolving to the built-in synthetic corpora — into the unified
// sample representation, plus dataset export.
package format

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/sample"
	"repro/internal/text"
)

// codeSuffixes are loaded as code documents with meta.suffix set.
var codeSuffixes = map[string]bool{
	".py": true, ".go": true, ".js": true, ".java": true, ".cpp": true,
	".c": true, ".h": true, ".rs": true, ".rb": true, ".ts": true,
}

// Load resolves a dataset spec:
//
//   - "hub:<name>" or "hub:<name>?docs=N&seed=S" → built-in synthetic
//     corpus (see corpus.HubNames)
//   - a file path → loaded according to its extension
//   - a directory → every supported file inside, merged in sorted order
func Load(spec string) (*dataset.Dataset, error) {
	if rest, ok := strings.CutPrefix(spec, "hub:"); ok {
		return loadHub(rest)
	}
	info, err := os.Stat(spec)
	if err != nil {
		return nil, fmt.Errorf("format: %w", err)
	}
	if info.IsDir() {
		return loadDir(spec)
	}
	return loadFile(spec)
}

func loadHub(rest string) (*dataset.Dataset, error) {
	name := rest
	docs, seed := 0, int64(0)
	if i := strings.IndexByte(rest, '?'); i >= 0 {
		name = rest[:i]
		q, err := url.ParseQuery(rest[i+1:])
		if err != nil {
			return nil, fmt.Errorf("format: hub query: %w", err)
		}
		if v := q.Get("docs"); v != "" {
			docs, err = strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("format: hub docs: %w", err)
			}
		}
		if v := q.Get("seed"); v != "" {
			s, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("format: hub seed: %w", err)
			}
			seed = s
		}
	}
	return corpus.Hub(name, docs, seed)
}

func loadDir(dir string) (*dataset.Dataset, error) {
	var files []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if supported(strings.ToLower(filepath.Ext(path))) {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	var parts []*dataset.Dataset
	for _, f := range files {
		d, err := loadFile(f)
		if err != nil {
			return nil, fmt.Errorf("format: %s: %w", f, err)
		}
		parts = append(parts, d)
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("format: no supported files under %s", dir)
	}
	return dataset.Concat(parts...), nil
}

func supported(ext string) bool {
	switch ext {
	case ".jsonl", ".json", ".txt", ".md", ".csv", ".tsv", ".html", ".htm":
		return true
	}
	return codeSuffixes[ext]
}

func loadFile(path string) (*dataset.Dataset, error) {
	ext := strings.ToLower(filepath.Ext(path))
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch ext {
	case ".jsonl":
		return loadJSONL(raw)
	case ".json":
		return loadJSON(raw)
	case ".csv":
		return loadCSV(raw, ',')
	case ".tsv":
		return loadCSV(raw, '\t')
	case ".html", ".htm":
		s := sample.New(text.StripHTML(string(raw)))
		s.SetString("meta.file", filepath.Base(path))
		return dataset.New([]*sample.Sample{s}), nil
	case ".txt", ".md":
		s := sample.New(string(raw))
		s.SetString("meta.file", filepath.Base(path))
		return dataset.New([]*sample.Sample{s}), nil
	}
	if codeSuffixes[ext] {
		s := sample.New(string(raw))
		s.SetString("meta.file", filepath.Base(path))
		s.SetString("meta.suffix", ext)
		return dataset.New([]*sample.Sample{s}), nil
	}
	return nil, fmt.Errorf("format: unsupported file type %q", ext)
}

// loadJSONL accepts both native sample objects and foreign JSONL: any
// object with a "text" (or "content") field; remaining top-level fields
// are folded into meta.
func loadJSONL(raw []byte) (*dataset.Dataset, error) {
	var samples []*sample.Sample
	lineNo := 0
	for _, line := range strings.Split(string(raw), "\n") {
		lineNo++
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		s, err := SampleFromJSON([]byte(line))
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples = append(samples, s)
	}
	return dataset.New(samples), nil
}

func loadJSON(raw []byte) (*dataset.Dataset, error) {
	trimmed := strings.TrimSpace(string(raw))
	if strings.HasPrefix(trimmed, "[") {
		var items []json.RawMessage
		if err := json.Unmarshal(raw, &items); err != nil {
			return nil, err
		}
		samples := make([]*sample.Sample, 0, len(items))
		for i, item := range items {
			s, err := SampleFromJSON(item)
			if err != nil {
				return nil, fmt.Errorf("item %d: %w", i, err)
			}
			samples = append(samples, s)
		}
		return dataset.New(samples), nil
	}
	s, err := SampleFromJSON(raw)
	if err != nil {
		return nil, err
	}
	return dataset.New([]*sample.Sample{s}), nil
}

// SampleFromJSON unifies one JSON object into a sample: "text"/"content"
// becomes the payload (with nested part support), "meta"/"stats" map to
// their fields, and foreign top-level fields fold into meta. It is the
// shared decode path of the batch loader and the streaming JSONL source,
// so both backends see identical samples for the same input line.
func SampleFromJSON(raw []byte) (*sample.Sample, error) {
	var obj map[string]any
	if err := json.Unmarshal(raw, &obj); err != nil {
		return nil, err
	}
	s := &sample.Sample{}
	for key, v := range obj {
		switch key {
		case "text", "content":
			switch tv := v.(type) {
			case string:
				s.Text = tv
			case map[string]any:
				// Nested text parts: {"text": {"body": ..., "abstract": ...}}
				for part, pv := range tv {
					str, _ := pv.(string)
					if part == "body" || part == "main" {
						s.Text = str
						continue
					}
					if s.Parts == nil {
						s.Parts = map[string]string{}
					}
					s.Parts[part] = str
				}
			}
		case "parts":
			if m, ok := v.(map[string]any); ok {
				for part, pv := range m {
					if str, ok := pv.(string); ok {
						if s.Parts == nil {
							s.Parts = map[string]string{}
						}
						s.Parts[part] = str
					}
				}
			}
		case "meta":
			if m, ok := v.(map[string]any); ok {
				for k, mv := range m {
					s.Meta = s.Meta.Set(k, mv)
				}
			}
		case "stats":
			if m, ok := v.(map[string]any); ok {
				for k, sv := range m {
					s.Stats = s.Stats.Set(k, sv)
				}
			}
		default:
			// Foreign fields become metadata.
			s.Meta = s.Meta.Set(key, v)
		}
	}
	return s, nil
}

// loadCSV maps a header row to sample fields: the "text" (or first)
// column becomes the text, others become meta.
func loadCSV(raw []byte, sep rune) (*dataset.Dataset, error) {
	r := csv.NewReader(strings.NewReader(string(raw)))
	r.Comma = sep
	r.FieldsPerRecord = -1
	rows, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return dataset.New(nil), nil
	}
	header := rows[0]
	textCol := 0
	for i, h := range header {
		if strings.EqualFold(strings.TrimSpace(h), "text") {
			textCol = i
			break
		}
	}
	samples := make([]*sample.Sample, 0, len(rows)-1)
	for _, row := range rows[1:] {
		s := &sample.Sample{}
		for i, cell := range row {
			if i >= len(header) {
				break
			}
			if i == textCol {
				s.Text = cell
				continue
			}
			s.Meta = s.Meta.Set(strings.TrimSpace(header[i]), cell)
		}
		samples = append(samples, s)
	}
	return dataset.New(samples), nil
}

// Export writes the dataset to path according to its extension: .jsonl
// (native, lossless), .json (array), or .txt (text only, blank-line
// separated).
func Export(d *dataset.Dataset, path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".jsonl":
		return d.SaveJSONL(path)
	case ".json":
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(d.Samples)
	case ".txt":
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		for i, s := range d.Samples {
			if i > 0 {
				if _, err := f.WriteString("\n\n"); err != nil {
					return err
				}
			}
			if _, err := f.WriteString(s.Text); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("format: unsupported export type for %q", path)
}

// ExportSharded writes the dataset as numbered JSONL shard files
// (path-00000-of-NNNNN.jsonl), each holding at most shardSize samples —
// the multi-file delivery format large processed corpora ship in. It
// returns the written file paths.
func ExportSharded(d *dataset.Dataset, pathPrefix string, shardSize int) ([]string, error) {
	if shardSize <= 0 {
		return nil, fmt.Errorf("format: shard size must be positive")
	}
	if err := os.MkdirAll(filepath.Dir(pathPrefix), 0o755); err != nil {
		return nil, err
	}
	nShards := (d.Len() + shardSize - 1) / shardSize
	if nShards == 0 {
		nShards = 1
	}
	var paths []string
	for i := 0; i < nShards; i++ {
		lo := i * shardSize
		hi := lo + shardSize
		if hi > d.Len() {
			hi = d.Len()
		}
		shard := dataset.New(d.Samples[lo:hi])
		path := fmt.Sprintf("%s-%05d-of-%05d.jsonl", pathPrefix, i, nShards)
		if err := shard.SaveJSONL(path); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}
