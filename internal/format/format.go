// Package format implements the Formatter layer of Table 1: loading and
// unifying heterogeneous inputs — JSONL, JSON, txt, csv/tsv, markdown,
// HTML, source code files, gzip-compressed variants of any of those,
// directories and globs, the "hub:" scheme resolving to the built-in
// synthetic corpora, and "mix:" weighted multi-source mixtures — into the
// unified sample representation, plus dataset export. All loading flows
// through the incremental Source interface (source.go), so the streaming
// backend reads the same specs with bounded memory; Load is simply a
// Source drained into a batch dataset.
//
// See docs/recipes.md for the complete input-spec reference.
package format

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dataset"
	"repro/internal/sample"
)

// codeSuffixes are loaded as code documents with meta.suffix set.
var codeSuffixes = map[string]bool{
	".py": true, ".go": true, ".js": true, ".java": true, ".cpp": true,
	".c": true, ".h": true, ".rs": true, ".rb": true, ".ts": true,
}

// Load resolves a dataset spec (every form OpenSource accepts — file,
// directory, glob, "hub:", "mix:") into a fully resident batch dataset.
func Load(spec string) (*dataset.Dataset, error) {
	src, err := OpenSource(spec)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	return Drain(src)
}

func supported(ext string) bool {
	switch ext {
	case ".jsonl", ".json", ".txt", ".md", ".csv", ".tsv", ".html", ".htm":
		return true
	}
	return codeSuffixes[ext]
}

// SampleFromJSON unifies one JSON object into a sample: "text"/"content"
// becomes the payload (with nested part support), "meta"/"stats" map to
// their fields, and foreign top-level fields fold into meta. It is the
// shared decode path of every JSON-carrying Source, so both backends see
// identical samples for the same input line. Clean flat objects decode
// through the hand-rolled fast path; everything else (and every error)
// goes through the reflective map fold below.
func SampleFromJSON(raw []byte) (*sample.Sample, error) {
	s := &sample.Sample{}
	if err := sampleFromJSONInto(raw, s); err != nil {
		return nil, err
	}
	return s, nil
}

// sampleFromJSONInto decodes into an existing (arena-allocated) sample.
func sampleFromJSONInto(raw []byte, s *sample.Sample) error {
	if sample.DecodeLooseJSON(raw, s) {
		return nil
	}
	return sampleFromJSONSlow(raw, s)
}

func sampleFromJSONSlow(raw []byte, s *sample.Sample) error {
	var obj map[string]any
	if err := json.Unmarshal(raw, &obj); err != nil {
		return err
	}
	*s = sample.Sample{}
	for key, v := range obj {
		switch key {
		case "text", "content":
			switch tv := v.(type) {
			case string:
				s.Text = tv
			case map[string]any:
				// Nested text parts: {"text": {"body": ..., "abstract": ...}}
				for part, pv := range tv {
					str, _ := pv.(string)
					if part == "body" || part == "main" {
						s.Text = str
						continue
					}
					if s.Parts == nil {
						s.Parts = map[string]string{}
					}
					s.Parts[part] = str
				}
			}
		case "parts":
			if m, ok := v.(map[string]any); ok {
				for part, pv := range m {
					if str, ok := pv.(string); ok {
						if s.Parts == nil {
							s.Parts = map[string]string{}
						}
						s.Parts[part] = str
					}
				}
			}
		case "meta":
			if m, ok := v.(map[string]any); ok {
				for k, mv := range m {
					s.Meta = s.Meta.Set(k, mv)
				}
			}
		case "stats":
			if m, ok := v.(map[string]any); ok {
				for k, sv := range m {
					s.Stats.Set(k, sv)
				}
			}
		default:
			// Foreign fields become metadata.
			s.Meta = s.Meta.Set(key, v)
		}
	}
	return nil
}

// Export writes the dataset to path according to its extension:
//
//   - .jsonl — native and lossless: text, parts, meta and stats all
//     round-trip through Load
//   - .json — a JSON array of full samples; lossless like .jsonl (an
//     empty dataset exports as [], not null)
//   - .txt — LOSSY: primary text only, blank-line separated; parts,
//     meta and stats are dropped by construction. Use .jsonl/.json when
//     provenance tags or statistics must survive.
func Export(d *dataset.Dataset, path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".jsonl":
		return d.SaveJSONL(path)
	case ".json":
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		samples := d.Samples
		if samples == nil {
			// A nil slice encodes as null; export [] so the file reads as
			// an explicitly empty array rather than a degenerate document.
			samples = []*sample.Sample{}
		}
		return enc.Encode(samples)
	case ".txt":
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		for i, s := range d.Samples {
			if i > 0 {
				if _, err := f.WriteString("\n\n"); err != nil {
					return err
				}
			}
			if _, err := f.WriteString(s.Text); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("format: unsupported export type for %q (want .jsonl, .json, or .txt — note .txt drops parts/meta/stats)", path)
}

// ExportSharded writes the dataset as numbered JSONL shard files
// (path-00000-of-NNNNN.jsonl), each holding at most shardSize samples —
// the multi-file delivery format large processed corpora ship in. It
// returns the written file paths.
func ExportSharded(d *dataset.Dataset, pathPrefix string, shardSize int) ([]string, error) {
	if shardSize <= 0 {
		return nil, fmt.Errorf("format: shard size must be positive")
	}
	if err := os.MkdirAll(filepath.Dir(pathPrefix), 0o755); err != nil {
		return nil, err
	}
	nShards := (d.Len() + shardSize - 1) / shardSize
	if nShards == 0 {
		nShards = 1
	}
	var paths []string
	for i := 0; i < nShards; i++ {
		lo := i * shardSize
		hi := lo + shardSize
		if hi > d.Len() {
			hi = d.Len()
		}
		shard := dataset.New(d.Samples[lo:hi])
		path := fmt.Sprintf("%s-%05d-of-%05d.jsonl", pathPrefix, i, nShards)
		if err := shard.SaveJSONL(path); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}
