// Package sampler implements the enhanced data sampling utilities of
// Sec. 5.2: uniform reservoir sampling, stratified sampling over metadata
// or statistics fields, and the diversity-maximizing sampler that buckets
// candidates by verb–noun structure and draws evenly across buckets (the
// strategy behind the Table 3 fine-tuning recipes).
package sampler

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/sample"
	"repro/internal/text"
)

// Reservoir draws k samples uniformly without replacement (classic
// reservoir sampling), preserving input order in the output.
func Reservoir(d *dataset.Dataset, k int, seed int64) *dataset.Dataset {
	if k >= d.Len() {
		return dataset.New(append([]*sample.Sample(nil), d.Samples...))
	}
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, k)
	for i := 0; i < k; i++ {
		idx[i] = i
	}
	for i := k; i < d.Len(); i++ {
		j := rng.Intn(i + 1)
		if j < k {
			idx[j] = i
		}
	}
	sort.Ints(idx)
	out := make([]*sample.Sample, k)
	for i, j := range idx {
		out[i] = d.Samples[j]
	}
	return dataset.New(out)
}

// KeyFunc maps a sample to its stratum key.
type KeyFunc func(*sample.Sample) string

// FieldKey strata by a string field (e.g. "meta.lang_tag").
func FieldKey(field string) KeyFunc {
	return func(s *sample.Sample) string {
		v, ok := s.GetString(field)
		if !ok {
			return "<missing>"
		}
		return v
	}
}

// StatBucketKey strata by bucketing a numeric stat into nBuckets between
// lo and hi.
func StatBucketKey(stat string, lo, hi float64, nBuckets int) KeyFunc {
	return func(s *sample.Sample) string {
		v, ok := s.Stat(stat)
		if !ok {
			return "<missing>"
		}
		if hi <= lo || nBuckets <= 0 {
			return "b0"
		}
		b := int((v - lo) / (hi - lo) * float64(nBuckets))
		if b < 0 {
			b = 0
		}
		if b >= nBuckets {
			b = nBuckets - 1
		}
		return fmt.Sprintf("b%d", b)
	}
}

// VerbNounKey strata by the sample's first verb–noun pair (its
// instruction structure) — the linguistic-diversity criterion of Sec. 5.2.
func VerbNounKey(s *sample.Sample) string {
	pairs := text.VerbNounPairs(text.WordsLower(s.Text))
	if len(pairs) == 0 {
		return "<none>"
	}
	return pairs[0][0] + "→" + pairs[0][1]
}

// Stratified draws k samples, allocating draws evenly across strata
// (round-robin over strata, uniformly within each), so rare strata keep
// representation. Output preserves the input order.
func Stratified(d *dataset.Dataset, k int, key KeyFunc, seed int64) *dataset.Dataset {
	if k >= d.Len() {
		return dataset.New(append([]*sample.Sample(nil), d.Samples...))
	}
	rng := rand.New(rand.NewSource(seed))
	strata := map[string][]int{}
	var order []string
	for i, s := range d.Samples {
		kk := key(s)
		if _, seen := strata[kk]; !seen {
			order = append(order, kk)
		}
		strata[kk] = append(strata[kk], i)
	}
	sort.Strings(order)
	// Shuffle within each stratum, then round-robin draw.
	for _, kk := range order {
		members := strata[kk]
		rng.Shuffle(len(members), func(a, b int) { members[a], members[b] = members[b], members[a] })
	}
	picked := make([]int, 0, k)
	cursor := map[string]int{}
	for len(picked) < k {
		progress := false
		for _, kk := range order {
			if len(picked) >= k {
				break
			}
			c := cursor[kk]
			members := strata[kk]
			if c < len(members) {
				picked = append(picked, members[c])
				cursor[kk] = c + 1
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	sort.Ints(picked)
	out := make([]*sample.Sample, len(picked))
	for i, j := range picked {
		out[i] = d.Samples[j]
	}
	return dataset.New(out)
}

// Diversity draws k samples maximizing verb–noun bucket coverage: it is
// Stratified with the VerbNounKey criterion.
func Diversity(d *dataset.Dataset, k int, seed int64) *dataset.Dataset {
	return Stratified(d, k, VerbNounKey, seed)
}

// Coverage reports the number of distinct strata present in d under key —
// the measure the diversity sampler maximizes.
func Coverage(d *dataset.Dataset, key KeyFunc) int {
	seen := map[string]struct{}{}
	for _, s := range d.Samples {
		seen[key(s)] = struct{}{}
	}
	return len(seen)
}
