package sampler

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/sample"
)

func taggedDataset(counts map[string]int) *dataset.Dataset {
	var samples []*sample.Sample
	// Deterministic order: sort keys implicitly via fixed insertion.
	for _, tag := range []string{"A", "B", "C", "D"} {
		n := counts[tag]
		for i := 0; i < n; i++ {
			s := sample.New(fmt.Sprintf("%s sample %d", tag, i))
			s.SetString("meta.tag", tag)
			samples = append(samples, s)
		}
	}
	return dataset.New(samples)
}

func TestReservoirSizeAndDeterminism(t *testing.T) {
	d := taggedDataset(map[string]int{"A": 50, "B": 50})
	a := Reservoir(d, 20, 7)
	b := Reservoir(d, 20, 7)
	if a.Len() != 20 || b.Len() != 20 {
		t.Fatalf("sizes = %d, %d", a.Len(), b.Len())
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("reservoir not deterministic")
	}
	c := Reservoir(d, 20, 8)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("seed ignored")
	}
}

func TestReservoirKOverflow(t *testing.T) {
	d := taggedDataset(map[string]int{"A": 5})
	if got := Reservoir(d, 50, 1); got.Len() != 5 {
		t.Fatalf("overflow k = %d", got.Len())
	}
}

func TestReservoirApproximatelyUniform(t *testing.T) {
	d := taggedDataset(map[string]int{"A": 500, "B": 500})
	hits := 0
	s := Reservoir(d, 300, 99)
	for _, smp := range s.Samples {
		if v, _ := smp.GetString("meta.tag"); v == "A" {
			hits++
		}
	}
	if hits < 110 || hits > 190 {
		t.Fatalf("A samples = %d of 300, expected ≈150", hits)
	}
}

func TestStratifiedEqualAllocation(t *testing.T) {
	// Heavily skewed input: stratified sampling must keep rare strata.
	d := taggedDataset(map[string]int{"A": 900, "B": 50, "C": 30, "D": 20})
	s := Stratified(d, 80, FieldKey("meta.tag"), 3)
	byTag := map[string]int{}
	for _, smp := range s.Samples {
		v, _ := smp.GetString("meta.tag")
		byTag[v]++
	}
	if byTag["A"] != 20 || byTag["B"] != 20 || byTag["C"] != 20 || byTag["D"] != 20 {
		t.Fatalf("allocation = %v, want 20 each", byTag)
	}
}

func TestStratifiedExhaustsSmallStrata(t *testing.T) {
	d := taggedDataset(map[string]int{"A": 100, "B": 4})
	s := Stratified(d, 50, FieldKey("meta.tag"), 3)
	byTag := map[string]int{}
	for _, smp := range s.Samples {
		v, _ := smp.GetString("meta.tag")
		byTag[v]++
	}
	if byTag["B"] != 4 {
		t.Fatalf("small stratum not exhausted: %v", byTag)
	}
	if byTag["A"]+byTag["B"] != 50 {
		t.Fatalf("total = %v", byTag)
	}
}

func TestStatBucketKey(t *testing.T) {
	s := sample.New("x")
	s.SetStat("score", 0.72)
	key := StatBucketKey("score", 0, 1, 10)
	if got := key(s); got != "b7" {
		t.Fatalf("bucket = %q", got)
	}
	s2 := sample.New("y") // missing stat
	if got := key(s2); got != "<missing>" {
		t.Fatalf("missing = %q", got)
	}
	s3 := sample.New("z")
	s3.SetStat("score", 99)
	if got := key(s3); got != "b9" {
		t.Fatalf("overflow clamp = %q", got)
	}
}

func TestDiversityImprovesCoverage(t *testing.T) {
	d := corpus.CFT(corpus.Options{Docs: 600, Seed: 11}, "EN")
	k := 100
	div := Diversity(d, k, 5)
	rnd := Reservoir(d, k, 5)
	covDiv := Coverage(div, VerbNounKey)
	covRnd := Coverage(rnd, VerbNounKey)
	if covDiv <= covRnd {
		t.Fatalf("diversity coverage %d should beat random %d", covDiv, covRnd)
	}
}

func TestVerbNounKey(t *testing.T) {
	s := sample.New("Write a story about dragons")
	if got := VerbNounKey(s); got != "write→story" {
		t.Fatalf("key = %q", got)
	}
	if got := VerbNounKey(sample.New("nothing verbal here")); got != "<none>" {
		t.Fatalf("none key = %q", got)
	}
}

// Property: stratified sampling returns exactly min(k, len) samples and
// every returned sample is from the input.
func TestPropertyStratifiedSize(t *testing.T) {
	f := func(nA, nB uint8, k uint8) bool {
		d := taggedDataset(map[string]int{"A": int(nA % 40), "B": int(nB % 40)})
		want := int(k) % 60
		s := Stratified(d, want, FieldKey("meta.tag"), 1)
		expected := want
		if d.Len() < want {
			expected = d.Len()
		}
		if s.Len() != expected {
			return false
		}
		members := map[*sample.Sample]bool{}
		for _, smp := range d.Samples {
			members[smp] = true
		}
		for _, smp := range s.Samples {
			if !members[smp] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
