package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/dataset"
	"repro/internal/ops"
	_ "repro/internal/ops/all"
)

var codecNames = []string{"none", "gzip", "flate", "lzj"}

func TestCodecRoundTrips(t *testing.T) {
	payloads := [][]byte{
		nil,
		[]byte(""),
		[]byte("short"),
		[]byte(strings.Repeat("compressible text block ", 500)),
		bytes.Repeat([]byte{0}, 10000),
		[]byte("日本語テキスト with mixed content 123"),
	}
	for _, name := range codecNames {
		codec, err := CodecByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range payloads {
			enc, err := codec.Encode(p)
			if err != nil {
				t.Fatalf("%s encode payload %d: %v", name, i, err)
			}
			dec, err := codec.Decode(enc)
			if err != nil {
				t.Fatalf("%s decode payload %d: %v", name, i, err)
			}
			if !bytes.Equal(dec, p) {
				t.Fatalf("%s payload %d corrupted: got %d bytes want %d", name, i, len(dec), len(p))
			}
		}
	}
}

func TestCodecUnknown(t *testing.T) {
	if _, err := CodecByName("zstd-pro"); err == nil {
		t.Fatal("unknown codec must error")
	}
	if c, err := CodecByName(""); err != nil || c.Name() != "none" {
		t.Fatalf("empty codec = %v, %v", c, err)
	}
}

func TestLZJCompressesRepetitiveData(t *testing.T) {
	codec, _ := CodecByName("lzj")
	data := []byte(strings.Repeat("the same sentence appears many times in this corpus. ", 200))
	enc, err := codec.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(data)/4 {
		t.Fatalf("lzj ratio too poor on repetitive data: %d -> %d", len(data), len(enc))
	}
}

func TestLZJRejectsCorruptInput(t *testing.T) {
	codec, _ := CodecByName("lzj")
	cases := [][]byte{
		{},
		[]byte("x"),
		[]byte("12345678"), // bad magic
		{0x31, 0x4a, 0x5a, 0x4c, 9, 9, 9, 9, 0xff}, // magic ok-ish but garbage body
	}
	for i, c := range cases {
		if _, err := codec.Decode(c); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
}

// Property: lzj round-trips arbitrary byte strings.
func TestPropertyLZJRoundTrip(t *testing.T) {
	codec, _ := CodecByName("lzj")
	f := func(data []byte) bool {
		enc, err := codec.Encode(data)
		if err != nil {
			return false
		}
		dec, err := codec.Decode(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: lzj round-trips highly repetitive inputs (overlapping matches).
func TestPropertyLZJOverlap(t *testing.T) {
	codec, _ := CodecByName("lzj")
	f := func(unit []byte, rep uint8) bool {
		if len(unit) == 0 {
			unit = []byte{'a'}
		}
		data := bytes.Repeat(unit, int(rep%50)+2)
		enc, err := codec.Encode(data)
		if err != nil {
			return false
		}
		dec, err := codec.Decode(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sampleDataset(n int) *dataset.Dataset {
	texts := make([]string, n)
	for i := range texts {
		texts[i] = fmt.Sprintf("cached sample number %d with some shared prefix text", i)
	}
	return dataset.FromTexts(texts)
}

func TestStorePutGet(t *testing.T) {
	for _, codec := range codecNames {
		t.Run(codec, func(t *testing.T) {
			store, err := NewStore(t.TempDir(), codec)
			if err != nil {
				t.Fatal(err)
			}
			d := sampleDataset(50)
			key := Key(d.Fingerprint(), "word_num_filter", ops.Params{"min_num": 5})
			if _, ok, _ := store.Get(key); ok {
				t.Fatal("unexpected cache hit")
			}
			if err := store.Put(key, d); err != nil {
				t.Fatal(err)
			}
			got, ok, err := store.Get(key)
			if err != nil || !ok {
				t.Fatalf("Get = %v, %v", ok, err)
			}
			if got.Fingerprint() != d.Fingerprint() {
				t.Fatal("cache round trip corrupted dataset")
			}
		})
	}
}

func TestStoreKeysAndDelete(t *testing.T) {
	store, _ := NewStore(t.TempDir(), "gzip")
	d := sampleDataset(3)
	store.Put("aaa", d)
	store.Put("bbb", d)
	keys, err := store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "aaa" {
		t.Fatalf("keys = %v", keys)
	}
	if err := store.Delete("aaa"); err != nil {
		t.Fatal(err)
	}
	if err := store.Delete("aaa"); err != nil {
		t.Fatal("double delete must be nil")
	}
	keys, _ = store.Keys()
	if len(keys) != 1 {
		t.Fatalf("keys after delete = %v", keys)
	}
	if size, err := store.SizeOnDisk(); err != nil || size <= 0 {
		t.Fatalf("SizeOnDisk = %d, %v", size, err)
	}
}

func TestKeyDistinguishesParams(t *testing.T) {
	fp := "abc"
	k1 := Key(fp, "op", ops.Params{"a": 1})
	k2 := Key(fp, "op", ops.Params{"a": 2})
	k3 := Key(fp, "op2", ops.Params{"a": 1})
	k4 := Key("other", "op", ops.Params{"a": 1})
	if k1 == k2 || k1 == k3 || k1 == k4 {
		t.Fatalf("keys collide: %s %s %s %s", k1, k2, k3, k4)
	}
	// Param order must not matter.
	ka := Key(fp, "op", ops.Params{"a": 1, "b": 2})
	kb := Key(fp, "op", ops.Params{"b": 2, "a": 1})
	if ka != kb {
		t.Fatal("param order changed the key")
	}
}

func TestCheckpointSaveResume(t *testing.T) {
	dir := t.TempDir()
	m, err := NewCheckpointManager(dir, "lzj")
	if err != nil {
		t.Fatal(err)
	}
	// Nothing to resume initially.
	if _, _, ok, err := m.Resume("recipe-1"); ok || err != nil {
		t.Fatalf("initial resume = %v, %v", ok, err)
	}
	d := sampleDataset(20)
	if err := m.Save("recipe-1", 3, d); err != nil {
		t.Fatal(err)
	}
	idx, got, ok, err := m.Resume("recipe-1")
	if err != nil || !ok {
		t.Fatalf("resume = %v, %v", ok, err)
	}
	if idx != 3 || got.Fingerprint() != d.Fingerprint() {
		t.Fatalf("resume idx=%d", idx)
	}
	// A different recipe must not resume from this checkpoint.
	if _, _, ok, _ := m.Resume("recipe-2"); ok {
		t.Fatal("foreign recipe resumed")
	}
}

func TestCheckpointReplacementCleansOld(t *testing.T) {
	dir := t.TempDir()
	m, _ := NewCheckpointManager(dir, "none")
	d := sampleDataset(5)
	m.Save("r", 1, d)
	m.Save("r", 2, d)
	m.Save("r", 3, d)
	entries, _ := os.ReadDir(dir)
	// Exactly one state file plus the manifest should remain.
	var states int
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "state-") {
			states++
		}
	}
	if states != 1 {
		t.Fatalf("stale state files left: %d", states)
	}
	idx, _, ok, _ := m.Resume("r")
	if !ok || idx != 3 {
		t.Fatalf("resume after replacement: idx=%d ok=%v", idx, ok)
	}
}

func TestCheckpointClear(t *testing.T) {
	dir := t.TempDir()
	m, _ := NewCheckpointManager(dir, "none")
	m.Save("r", 1, sampleDataset(2))
	if err := m.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := m.Resume("r"); ok {
		t.Fatal("resume after clear")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("files left after clear: %d", len(entries))
	}
}

func TestCheckpointCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	m, _ := NewCheckpointManager(dir, "none")
	os.WriteFile(filepath.Join(dir, "checkpoint.json"), []byte("not json"), 0o644)
	if _, _, _, err := m.Resume("r"); err == nil {
		t.Fatal("corrupt manifest should surface an error")
	}
}

func TestSpaceAnalysis(t *testing.T) {
	r, err := config.ParseRecipe(`
process:
  - whitespace_normalization_mapper:
  - fix_unicode_mapper:
  - word_num_filter:
  - stopwords_filter:
  - flagged_words_filter:
  - document_deduplicator:
`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeSpace(r)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mappers != 2 || a.Filters != 3 || a.Deduplicators != 1 {
		t.Fatalf("census = %+v", a)
	}
	// 1 + M + F + 1{F>0} + D = 1 + 2 + 3 + 1 + 1 = 8.
	if a.CacheModeMultiple != 8 {
		t.Fatalf("cache multiple = %d", a.CacheModeMultiple)
	}
	if a.CheckpointModeMultiple != 3 {
		t.Fatalf("checkpoint multiple = %d", a.CheckpointModeMultiple)
	}
	out := a.Render(1000)
	if !strings.Contains(out, "8 x S = 8000") || !strings.Contains(out, "3 x S = 3000") {
		t.Fatalf("render = %q", out)
	}

	// Mapper-only recipe: no stats column, no 1{F>0} term.
	r2, _ := config.ParseRecipe("process:\n  - lowercase_mapper:\n")
	a2, _ := AnalyzeSpace(r2)
	if a2.CacheModeMultiple != 2 {
		t.Fatalf("mapper-only multiple = %d", a2.CacheModeMultiple)
	}

	r3 := config.Default()
	r3.Process = []config.OpSpec{{Name: "ghost"}}
	if _, err := AnalyzeSpace(r3); err == nil {
		t.Fatal("unknown op accepted")
	}
}
