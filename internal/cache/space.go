package cache

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/ops"
)

// SpaceAnalysis is the theoretical peak-disk-usage model of Appendix A.2:
// cache mode stores one dataset-sized file per operator (plus one for the
// original dataset and one extra for the first Filter's stats column);
// checkpoint mode keeps at most three dataset-sized states at any moment
// thanks to the write-then-delete cleanup order.
type SpaceAnalysis struct {
	Mappers       int
	Filters       int
	Deduplicators int
	// CacheModeMultiple is peak disk usage in multiples of the input size
	// S: (1 + M + F + 1{F>0} + D).
	CacheModeMultiple int
	// CheckpointModeMultiple is the checkpoint-mode peak: 3.
	CheckpointModeMultiple int
}

// AnalyzeSpace derives the Appendix A.2 space model from a recipe.
func AnalyzeSpace(r *config.Recipe) (SpaceAnalysis, error) {
	var a SpaceAnalysis
	for i, spec := range r.Process {
		info, ok := ops.InfoFor(spec.Name)
		if !ok {
			return a, fmt.Errorf("cache: process[%d]: unknown operator %q", i, spec.Name)
		}
		switch info.Category {
		case ops.CategoryMapper:
			a.Mappers++
		case ops.CategoryFilter:
			a.Filters++
		case ops.CategoryDeduplicator:
			a.Deduplicators++
		}
	}
	a.CacheModeMultiple = 1 + a.Mappers + a.Filters + a.Deduplicators
	if a.Filters > 0 {
		a.CacheModeMultiple++
	}
	a.CheckpointModeMultiple = 3
	return a, nil
}

// Render formats the analysis for the CLI, with S the input dataset size.
func (a SpaceAnalysis) Render(inputBytes int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "space analysis (Appendix A.2 model, S = %d bytes):\n", inputBytes)
	fmt.Fprintf(&b, "  operators: %d mappers, %d filters, %d deduplicators\n",
		a.Mappers, a.Filters, a.Deduplicators)
	fmt.Fprintf(&b, "  cache mode peak:      %d x S = %d bytes\n",
		a.CacheModeMultiple, int64(a.CacheModeMultiple)*inputBytes)
	fmt.Fprintf(&b, "  checkpoint mode peak: %d x S = %d bytes\n",
		a.CheckpointModeMultiple, int64(a.CheckpointModeMultiple)*inputBytes)
	return b.String()
}
