// Package cache implements the space-optimization layer of Sec. 6:
// per-operator dataset caches keyed by content fingerprints, crash-recovery
// checkpoints with the bounded-peak-space cleanup discipline of Appendix
// A.2, and pluggable cache compression. The stdlib provides gzip and flate;
// the "lzj" codec is a from-scratch LZ77 byte compressor standing in for
// the LZ4/zstd fast codecs the paper uses.
package cache

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Codec compresses and decompresses cache payloads.
type Codec interface {
	// Name is the codec identifier used in recipes ("gzip", "flate", "lzj",
	// "none").
	Name() string
	// Encode compresses src.
	Encode(src []byte) ([]byte, error)
	// Decode decompresses data produced by Encode.
	Decode(src []byte) ([]byte, error)
}

// CodecByName returns the codec for a recipe's cache_compression setting.
// The empty string and "none" mean no compression.
func CodecByName(name string) (Codec, error) {
	switch name {
	case "", "none":
		return noneCodec{}, nil
	case "gzip":
		return gzipCodec{}, nil
	case "flate":
		return flateCodec{}, nil
	case "lzj":
		return lzjCodec{}, nil
	}
	return nil, fmt.Errorf("cache: unknown codec %q", name)
}

type noneCodec struct{}

func (noneCodec) Name() string                      { return "none" }
func (noneCodec) Encode(src []byte) ([]byte, error) { return src, nil }
func (noneCodec) Decode(src []byte) ([]byte, error) { return src, nil }

type gzipCodec struct{}

func (gzipCodec) Name() string { return "gzip" }

// gzipWriterPool recycles gzip writers: each carries large internal
// deflate state that would otherwise be rebuilt per cache Put.
var gzipWriterPool = sync.Pool{New: func() any {
	w, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
	return w
}}

func (gzipCodec) Encode(src []byte) ([]byte, error) {
	var buf bytes.Buffer
	w := gzipWriterPool.Get().(*gzip.Writer)
	w.Reset(&buf)
	if _, err := w.Write(src); err != nil {
		gzipWriterPool.Put(w)
		return nil, err
	}
	if err := w.Close(); err != nil {
		gzipWriterPool.Put(w)
		return nil, err
	}
	gzipWriterPool.Put(w)
	return buf.Bytes(), nil
}

func (gzipCodec) Decode(src []byte) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(src))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

type flateCodec struct{}

func (flateCodec) Name() string { return "flate" }

// flateWriterPool recycles deflate writers across cache Puts.
var flateWriterPool = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

func (flateCodec) Encode(src []byte) ([]byte, error) {
	var buf bytes.Buffer
	w := flateWriterPool.Get().(*flate.Writer)
	w.Reset(&buf)
	if _, err := w.Write(src); err != nil {
		flateWriterPool.Put(w)
		return nil, err
	}
	if err := w.Close(); err != nil {
		flateWriterPool.Put(w)
		return nil, err
	}
	flateWriterPool.Put(w)
	return buf.Bytes(), nil
}

func (flateCodec) Decode(src []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	return io.ReadAll(r)
}

// lzjCodec is a fast LZ77 compressor in the LZ4 spirit: greedy hash-table
// matching, emitted as (literal-run, match) tokens with varint lengths and
// 2-byte offsets. It favours speed over ratio, matching the role cache
// compression plays in the paper (compression time must be negligible next
// to processing time).
type lzjCodec struct{}

func (lzjCodec) Name() string { return "lzj" }

const (
	lzjMinMatch   = 4
	lzjMaxOffset  = 1 << 16
	lzjHashBits   = 16
	lzjHashShift  = 64 - lzjHashBits
	lzjHashPrime  = 0x9e3779b185ebca87
	lzjMagic      = 0x4c5a4a31 // "LZJ1"
	lzjHeaderSize = 8          // magic + decompressed length (uint32 each)
)

func lzjHash(v uint64) uint32 { return uint32((v * lzjHashPrime) >> lzjHashShift) }

func load64(b []byte, i int) uint64 { return binary.LittleEndian.Uint64(b[i:]) }

// lzjTablePool recycles the 256KB match table: allocating (and
// zeroing) it per Encode dominated small-payload compression cost.
var lzjTablePool = sync.Pool{New: func() any { return new([1 << lzjHashBits]int32) }}

// Encode compresses src. Format: 4-byte magic, 4-byte original length,
// then tokens: uvarint literal length, literals, and — unless at end —
// uvarint (matchLen - lzjMinMatch) and 2-byte little-endian offset.
func (lzjCodec) Encode(src []byte) ([]byte, error) {
	if len(src) > 1<<31 {
		return nil, fmt.Errorf("lzj: input too large (%d bytes)", len(src))
	}
	out := make([]byte, lzjHeaderSize, lzjHeaderSize+len(src)/2+64)
	binary.LittleEndian.PutUint32(out[0:], lzjMagic)
	binary.LittleEndian.PutUint32(out[4:], uint32(len(src)))

	tableP := lzjTablePool.Get().(*[1 << lzjHashBits]int32)
	defer lzjTablePool.Put(tableP)
	table := tableP
	for i := range table {
		table[i] = -1
	}
	var scratch [binary.MaxVarintLen64]byte
	emitLiterals := func(lits []byte) {
		n := binary.PutUvarint(scratch[:], uint64(len(lits)))
		out = append(out, scratch[:n]...)
		out = append(out, lits...)
	}
	emitMatch := func(length, offset int) {
		n := binary.PutUvarint(scratch[:], uint64(length-lzjMinMatch))
		out = append(out, scratch[:n]...)
		out = append(out, byte(offset), byte(offset>>8))
	}

	litStart := 0
	i := 0
	for i+8 <= len(src) {
		h := lzjHash(load64(src, i))
		cand := int(table[h])
		table[h] = int32(i)
		if cand < 0 || i-cand > lzjMaxOffset-1 || load64(src, cand) != load64(src, i) {
			i++
			continue
		}
		// Extend the match.
		matchLen := 8
		for i+matchLen < len(src) && src[cand+matchLen] == src[i+matchLen] {
			matchLen++
		}
		emitLiterals(src[litStart:i])
		emitMatch(matchLen, i-cand)
		i += matchLen
		litStart = i
	}
	emitLiterals(src[litStart:])
	return out, nil
}

// Decode decompresses data produced by Encode.
func (lzjCodec) Decode(src []byte) ([]byte, error) {
	if len(src) < lzjHeaderSize {
		return nil, fmt.Errorf("lzj: truncated header")
	}
	if binary.LittleEndian.Uint32(src) != lzjMagic {
		return nil, fmt.Errorf("lzj: bad magic")
	}
	want := int(binary.LittleEndian.Uint32(src[4:]))
	out := make([]byte, 0, want)
	i := lzjHeaderSize
	for i < len(src) {
		litLen, n := binary.Uvarint(src[i:])
		if n <= 0 {
			return nil, fmt.Errorf("lzj: bad literal length at %d", i)
		}
		i += n
		if i+int(litLen) > len(src) {
			return nil, fmt.Errorf("lzj: literal run past end")
		}
		out = append(out, src[i:i+int(litLen)]...)
		i += int(litLen)
		if i >= len(src) {
			break
		}
		mlRaw, n := binary.Uvarint(src[i:])
		if n <= 0 {
			return nil, fmt.Errorf("lzj: bad match length at %d", i)
		}
		i += n
		if i+2 > len(src) {
			return nil, fmt.Errorf("lzj: truncated offset")
		}
		offset := int(src[i]) | int(src[i+1])<<8
		i += 2
		matchLen := int(mlRaw) + lzjMinMatch
		// A match may never carry the output past the declared length:
		// without this check a corrupt varint could drive an unbounded
		// copy loop before the final length comparison ran.
		if mlRaw > uint64(want) || len(out)+matchLen > want {
			return nil, fmt.Errorf("lzj: match overruns declared length %d", want)
		}
		start := len(out) - offset
		if start < 0 || offset == 0 {
			return nil, fmt.Errorf("lzj: invalid offset %d at output size %d", offset, len(out))
		}
		// Overlapping copies must run byte-by-byte.
		for k := 0; k < matchLen; k++ {
			out = append(out, out[start+k])
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("lzj: decompressed %d bytes, header says %d", len(out), want)
	}
	return out, nil
}
