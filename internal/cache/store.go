package cache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/ops"
)

// Store is the per-operator dataset cache: after each OP the executor can
// persist the current dataset keyed by (input fingerprint, op name, op
// params), so re-running a recipe with a modified tail reuses every
// unchanged prefix — the cache mechanism of Sec. 4.1.1.
type Store struct {
	dir   string
	codec Codec
}

// NewStore opens (creating if needed) a cache directory with the given
// compression codec.
func NewStore(dir, compression string) (*Store, error) {
	codec, err := CodecByName(compression)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, codec: codec}, nil
}

// Key derives the cache key for applying an operator (with params) to a
// dataset state identified by inputFingerprint.
func Key(inputFingerprint, opName string, params ops.Params) string {
	h := fnv.New64a()
	fmt.Fprint(h, inputFingerprint, "\x00", opName, "\x00")
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%v\x00", k, params[k])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".cache."+s.codec.Name())
}

// putBufPool recycles the serialization buffers of Put (cache and
// checkpoint writes happen after every op of a cached run).
var putBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Put stores the dataset under key.
func (s *Store) Put(key string, d *dataset.Dataset) error {
	buf := putBufPool.Get().(*bytes.Buffer)
	defer putBufPool.Put(buf)
	buf.Reset()
	if err := d.WriteJSONL(buf); err != nil {
		return err
	}
	enc, err := s.codec.Encode(buf.Bytes())
	if err != nil {
		return err
	}
	tmp := s.path(key) + ".tmp"
	if err := os.WriteFile(tmp, enc, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.path(key))
}

// Get loads the dataset stored under key; ok is false on a cache miss.
func (s *Store) Get(key string) (d *dataset.Dataset, ok bool, err error) {
	raw, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	dec, err := s.codec.Decode(raw)
	if err != nil {
		return nil, false, fmt.Errorf("cache: decode %s: %w", key, err)
	}
	ds, err := dataset.ReadJSONL(bytes.NewReader(dec))
	if err != nil {
		return nil, false, fmt.Errorf("cache: parse %s: %w", key, err)
	}
	return ds, true, nil
}

// Delete removes the entry for key if present.
func (s *Store) Delete(key string) error {
	err := os.Remove(s.path(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Keys lists the stored cache keys.
func (s *Store) Keys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	suffix := ".cache." + s.codec.Name()
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if n := len(name) - len(suffix); n > 0 && name[n:] == suffix {
			keys = append(keys, name[:n])
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// SizeOnDisk returns the total bytes used by cache entries, walking
// subdirectories too so intermediate spill runs living under the cache
// directory (see SpillDir) count against cache disk usage.
func (s *Store) SizeOnDisk() (int64, error) {
	var total int64
	err := filepath.WalkDir(s.dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil // spill files vanish concurrently; skip, don't fail
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total, err
}

// SpillDir returns where dedup ops write intermediate spill runs: under
// the cache directory when the cache is enabled (so SizeOnDisk accounts
// them), else a sibling spill directory under the work dir. Nothing is
// created; spill structures mkdir on first use.
func SpillDir(workDir string, useCache bool) string {
	if useCache {
		return filepath.Join(workDir, "cache", "spill")
	}
	return filepath.Join(workDir, "spill")
}

// Checkpoint captures a recoverable pipeline state: which recipe was
// running, how many operators completed, and the dataset at that point.
type Checkpoint struct {
	// RecipeFingerprint identifies the recipe configuration; a checkpoint
	// from a different recipe must not be resumed.
	RecipeFingerprint string `json:"recipe_fingerprint"`
	// OpIndex is the number of operators already applied.
	OpIndex int `json:"op_index"`
	// DataFile is the dataset payload file, relative to the manager dir.
	DataFile string `json:"data_file"`
}

// CheckpointManager persists checkpoints with the cleanup discipline of
// Appendix A.2: the previous checkpoint is deleted only after the new one
// is fully written, so peak disk usage stays bounded (≈3S including the
// original dataset) while a valid recovery point always exists.
type CheckpointManager struct {
	dir   string
	codec Codec
}

// NewCheckpointManager opens (creating if needed) a checkpoint directory.
func NewCheckpointManager(dir, compression string) (*CheckpointManager, error) {
	codec, err := CodecByName(compression)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &CheckpointManager{dir: dir, codec: codec}, nil
}

func (m *CheckpointManager) manifestPath() string {
	return filepath.Join(m.dir, "checkpoint.json")
}

// Save writes a checkpoint after opIndex operators, replacing any previous
// checkpoint only once the new payload is durable.
func (m *CheckpointManager) Save(recipeFP string, opIndex int, d *dataset.Dataset) error {
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		return err
	}
	enc, err := m.codec.Encode(buf.Bytes())
	if err != nil {
		return err
	}
	dataFile := fmt.Sprintf("state-%03d.%s", opIndex, m.codec.Name())
	if err := os.WriteFile(filepath.Join(m.dir, dataFile), enc, 0o644); err != nil {
		return err
	}
	prev, _ := m.load()
	manifest, err := json.Marshal(Checkpoint{
		RecipeFingerprint: recipeFP,
		OpIndex:           opIndex,
		DataFile:          dataFile,
	})
	if err != nil {
		return err
	}
	tmp := m.manifestPath() + ".tmp"
	if err := os.WriteFile(tmp, manifest, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, m.manifestPath()); err != nil {
		return err
	}
	// Only now is it safe to drop the previous state file.
	if prev != nil && prev.DataFile != dataFile {
		os.Remove(filepath.Join(m.dir, prev.DataFile))
	}
	return nil
}

func (m *CheckpointManager) load() (*Checkpoint, error) {
	raw, err := os.ReadFile(m.manifestPath())
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return nil, err
	}
	return &cp, nil
}

// Resume returns the latest checkpoint for the given recipe fingerprint,
// or ok=false when none is applicable.
func (m *CheckpointManager) Resume(recipeFP string) (opIndex int, d *dataset.Dataset, ok bool, err error) {
	cp, err := m.load()
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, false, nil
		}
		return 0, nil, false, err
	}
	if cp.RecipeFingerprint != recipeFP {
		return 0, nil, false, nil
	}
	raw, err := os.ReadFile(filepath.Join(m.dir, cp.DataFile))
	if err != nil {
		return 0, nil, false, fmt.Errorf("cache: checkpoint payload: %w", err)
	}
	dec, err := m.codec.Decode(raw)
	if err != nil {
		return 0, nil, false, fmt.Errorf("cache: checkpoint decode: %w", err)
	}
	ds, err := dataset.ReadJSONL(bytes.NewReader(dec))
	if err != nil {
		return 0, nil, false, fmt.Errorf("cache: checkpoint parse: %w", err)
	}
	return cp.OpIndex, ds, true, nil
}

// Clear removes all checkpoint state (called after a successful run).
func (m *CheckpointManager) Clear() error {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		os.Remove(filepath.Join(m.dir, e.Name()))
	}
	return nil
}
