// Wire-protocol v2 conformance: negotiation against old workers, mixed
// fleets, keep-mask delta responses for filter-only stages, and frame
// compression must all leave the export byte-identical to a
// single-process run, with the transport accounting visible in the
// report and journal.
package repro_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/disttest"
	"repro/internal/ops"
	_ "repro/internal/ops/all"
	"repro/internal/remote"
	"repro/internal/telemetry"
)

// filterRecipe is a filter-only pipeline: every dispatched stage range
// is delta-eligible, so responses come back as keep masks + stats.
func filterRecipe(t *testing.T) *config.Recipe {
	r := config.Default()
	r.ProjectName = "transport"
	r.UseCache = false
	r.Process = []config.OpSpec{
		{Name: "text_length_filter", Params: ops.Params{"min_len": 20}},
		{Name: "word_num_filter", Params: ops.Params{"min_num": 3}},
		{Name: "alphanumeric_filter", Params: ops.Params{"min_ratio": 0.2}},
	}
	r.WorkDir = t.TempDir()
	return r
}

// journalWireEvents sums the worker_wire accounting in a journal.
func journalWireEvents(t *testing.T, path string) (events int, sent, recv int64, deltaStages int) {
	t.Helper()
	evs, err := telemetry.ReadJournal(path)
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	for _, e := range evs {
		if e.Type == telemetry.EvWorkerWire {
			events++
			sent += e.BytesSent
			recv += e.BytesRecv
			deltaStages += e.DeltaStages
		}
	}
	return
}

// runTransportCase runs one distributed configuration and checks the
// export against the single-process baseline.
func runTransportCase(t *testing.T, r *config.Recipe, input string, want []byte, popts remote.PoolOptions) (*remote.Pool, string, int64, int64, int) {
	t.Helper()
	rr := *r
	rr.WorkDir = t.TempDir()
	tele, err := telemetry.NewRun(telemetry.RunOptions{JournalDir: t.TempDir(), RunID: "transport"})
	if err != nil {
		t.Fatal(err)
	}
	tele.Begin("dist", "transport", input, 0)
	popts.WorkDir = rr.WorkDir
	pool, err := remote.NewPool(popts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	got, rep, err := runStreamOnce(t, &rr, input, 40, pool, tele)
	if err != nil {
		t.Fatal(err)
	}
	tele.End("ok", rep.InCount, rep.OutCount, nil, nil)
	if err := tele.Close(); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("distributed export diverges from single-process: %d vs %d bytes", len(got), len(want))
	}
	if rep.Dist == nil {
		t.Fatal("distributed run reported no fleet stats")
	}
	return pool, tele.JournalPath(), rep.Dist.BytesSent, rep.Dist.BytesRecv, rep.Dist.DeltaStages
}

// TestDistributedV2Delta pins the keep-mask path: a filter-only recipe
// over a v2 fleet must answer stages with deltas, shrink the response
// bytes, journal the accounting, and stay byte-identical — stats
// annotations included, since the export carries them.
func TestDistributedV2Delta(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	input := chaosInput(t)
	r := filterRecipe(t)
	want, _, err := runStreamOnce(t, r, input, 40, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	pool, journal, sent, recv, deltas := runTransportCase(t, r, input, want, remote.PoolOptions{
		Workers:   2,
		WorkerBin: disttest.WorkerBin(t),
	})
	if sent <= 0 || recv <= 0 {
		t.Errorf("no wire accounting: sent=%d recv=%d", sent, recv)
	}
	if deltas == 0 {
		t.Error("filter-only stages produced no delta responses")
	}
	st := pool.DistStats()
	for _, w := range st.Workers {
		if w.Proto != 2 {
			t.Errorf("worker %d negotiated proto %d, want 2", w.Worker, w.Proto)
		}
	}
	// Delta responses carry a bitmap + stats instead of full samples: the
	// response stream must be well under the request stream for this
	// text-heavy input.
	if recv*2 > sent {
		t.Errorf("delta responses not compact: sent %d, recv %d", sent, recv)
	}
	events, jSent, jRecv, jDeltas := journalWireEvents(t, journal)
	if events != 2 {
		t.Errorf("journal has %d worker_wire events, want 2", events)
	}
	if jSent != sent || jRecv != recv || jDeltas != deltas {
		t.Errorf("journal wire accounting (%d/%d/%d) disagrees with report (%d/%d/%d)",
			jSent, jRecv, jDeltas, sent, recv, deltas)
	}
}

// TestDistributedCompress runs the chaos pipeline with dist_compress on:
// byte-identical export, and the raw accounting must show the frames
// shrank on the wire.
func TestDistributedCompress(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	input := chaosInput(t)
	r := chaosRecipe(t)
	r.DistCompress = true
	want, _, err := runStreamOnce(t, r, input, 40, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	pool, _, sent, _, _ := runTransportCase(t, r, input, want, remote.PoolOptions{
		Workers:   2,
		WorkerBin: disttest.WorkerBin(t),
	})
	st := pool.DistStats()
	if st.RawBytesSent <= sent {
		t.Errorf("compression shows no shrink: %d raw, %d on the wire", st.RawBytesSent, sent)
	}
}

// TestDistributedMixedFleet dials one old (v1-capped) worker and one
// current worker: negotiation must land each on its own version and the
// merged export must stay byte-identical.
func TestDistributedMixedFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	input := chaosInput(t)
	r := filterRecipe(t)
	want, _, err := runStreamOnce(t, r, input, 40, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	old := disttest.StartWorker(t, 1, "", "-max-proto", "1")
	cur := disttest.StartWorker(t, 2, "")
	pool, _, sent, recv, _ := runTransportCase(t, r, input, want, remote.PoolOptions{
		Addrs: []string{old.Addr, cur.Addr},
	})
	if sent <= 0 || recv <= 0 {
		t.Errorf("no wire accounting: sent=%d recv=%d", sent, recv)
	}
	st := pool.DistStats()
	if len(st.Workers) != 2 {
		t.Fatalf("fleet stats cover %d workers, want 2", len(st.Workers))
	}
	if st.Workers[0].Proto != 1 {
		t.Errorf("v1-capped worker negotiated proto %d", st.Workers[0].Proto)
	}
	if st.Workers[1].Proto != 2 {
		t.Errorf("current worker negotiated proto %d", st.Workers[1].Proto)
	}
	if st.Workers[0].DeltaStages != 0 {
		t.Errorf("v1 worker answered %d delta stages", st.Workers[0].DeltaStages)
	}
}

// TestDistributedV1Coordinator caps the coordinator at v1 against a
// current fleet: the fallback path old coordinators will take against
// new workers.
func TestDistributedV1Coordinator(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	input := chaosInput(t)
	r := filterRecipe(t)
	want, _, err := runStreamOnce(t, r, input, 40, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	pool, _, sent, _, deltas := runTransportCase(t, r, input, want, remote.PoolOptions{
		Workers:   2,
		WorkerBin: disttest.WorkerBin(t),
		MaxProto:  1,
	})
	if deltas != 0 {
		t.Errorf("v1 coordinator recorded %d delta stages", deltas)
	}
	if sent <= 0 {
		t.Errorf("v1 path lost its wire accounting: sent=%d", sent)
	}
	for _, w := range pool.DistStats().Workers {
		if w.Proto != 1 {
			t.Errorf("worker %d negotiated proto %d under a v1 coordinator", w.Worker, w.Proto)
		}
	}
}
