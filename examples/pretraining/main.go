// Pretraining: the Figure 7 / Table 2 feedback loop in miniature —
// refine a raw multi-source mix with per-source recipes, pre-train
// reference models on raw vs refined data at equal token budgets, and
// compare them on the 16-task suite and the leaderboard.
//
//	go run ./examples/pretraining
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/llm"
)

func main() {
	scale := experiments.Quick()
	scale.SourceDocs = 100 // keep the example snappy

	fmt.Println("building the three data recipes (raw, raw+pile, refined)...")
	mixes, err := experiments.BuildPretrainMixes(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  RedPajama (raw):        %6d docs\n", mixes.RedPajama.Len())
	fmt.Printf("  RedPajama+Pile (raw):   %6d docs\n", mixes.WithPile.Len())
	fmt.Printf("  Data-Juicer (refined):  %6d docs\n", mixes.Refined.Len())

	budget := 100 * scale.TokenUnit
	fmt.Printf("\npre-training reference models (budget %d tokens each)...\n", budget)
	raw := llm.Pretrain("raw-mix", "RedPajama+Pile", mixes.WithPile.Clone(),
		llm.TrainConfig{TokenBudget: budget, Seed: 1})
	refined := llm.Pretrain("refined-mix", "Data-Juicer recipe", mixes.Refined.Clone(),
		llm.TrainConfig{TokenBudget: budget, Seed: 1})

	suite := llm.NewSuite(777001)
	suite.Calibrate(raw)
	scoreRaw, err := suite.Evaluate(raw)
	if err != nil {
		log.Fatal(err)
	}
	scoreRefined, err := suite.Evaluate(refined)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-task scores:")
	fmt.Print(llm.RenderScores(suite.TaskNames(), []llm.Scores{scoreRaw, scoreRefined}))

	var lb llm.Leaderboard
	lb.AddScores(scoreRaw, "RedPajama+Pile (raw)", raw.TrainTokens)
	lb.AddScores(scoreRefined, "Data-Juicer (refined)", refined.TrainTokens)
	fmt.Println("\nleaderboard:")
	fmt.Print(lb.Render())

	if scoreRefined.Average > scoreRaw.Average {
		fmt.Println("\n=> the refined recipe wins at an equal token budget,")
		fmt.Println("   the Figure 7 result: better data, not more data.")
	}
}
