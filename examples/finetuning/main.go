// Finetuning: the Table 3 flow — build a fine-tuning recipe with quality
// filtering and diversity sampling, then compare it pairwise against
// random sampling of the same pool under the GPT-4-substitute judge.
//
//	go run ./examples/finetuning
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/corpus"
	"repro/internal/llm"
	"repro/internal/sample"
	"repro/internal/sampler"
)

func main() {
	// A heterogeneous chat-fine-tuning candidate pool (three quality
	// tiers, as real collections have).
	pool := corpus.CFT(corpus.Options{Docs: 1000, Seed: 7}, "EN")
	fmt.Printf("candidate pool: %d samples\n", pool.Len())

	// Competitor: random 300 samples, all tiers.
	random := sampler.Reservoir(pool, 300, 1)

	// Data-Juicer recipe: drop the low-quality tier, then
	// diversity-sample 300 across verb-noun instruction buckets.
	filtered, dropped := pool.Filter(0, func(s *sample.Sample) bool {
		tier, _ := s.GetFloat("meta.tier")
		return tier >= 1
	})
	fmt.Printf("quality filter dropped %d low-tier samples\n", len(dropped))
	dj := sampler.Diversity(filtered, 300, 1)

	// Compare instruction-structure coverage (what the diversity sampler
	// maximizes; the pie-plot view of Figure 5).
	fmt.Printf("\nverb-noun coverage: random=%d buckets, data-juicer=%d buckets\n",
		sampler.Coverage(random, sampler.VerbNounKey),
		sampler.Coverage(dj, sampler.VerbNounKey))
	probe := analysis.Analyze(dj, 0)
	fmt.Println("\ntop instruction structures in the refined recipe:")
	fmt.Print(probe.RenderDiversity(8))

	// "Fine-tune" both models and judge them pairwise.
	mRandom := llm.Finetune("random-sample", random)
	mDJ := llm.Finetune("data-juicer", dj)
	fmt.Printf("\ntuning-data quality: random=%.3f, data-juicer=%.3f\n",
		mRandom.AvgQuality(), mDJ.AvgQuality())

	res := llm.Judge(mRandom, mDJ, llm.JudgeConfig{Prompts: 200, Seed: 11})
	fmt.Printf("\npairwise judging over 200 prompts:\n")
	fmt.Printf("  random-sample wins: %d\n", res.WinA)
	fmt.Printf("  data-juicer wins:   %d\n", res.WinB)
	fmt.Printf("  ties:               %d\n", res.Tie)
	if res.WinB <= res.WinA {
		log.Fatal("unexpected: the refined recipe should win")
	}
	fmt.Println("\n=> same data volume, higher win rate — the Table 3 result.")
}
