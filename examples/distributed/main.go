// Distributed: the Figure 10 flow — run the same recipe over dataset
// shards under the Ray-like and Beam-like runners across cluster sizes,
// and watch the architectural difference: parallel loading scales,
// serialized loading does not.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dist"
	_ "repro/internal/ops/all"
)

const recipeYAML = `
project_name: distributed-example
use_cache: false
process:
  - clean_html_mapper:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 10
  - stopwords_filter:
      min_ratio: 0.05
  - document_deduplicator:
`

func main() {
	recipe, err := config.ParseRecipe(recipeYAML)
	if err != nil {
		log.Fatal(err)
	}
	data := corpus.StackExchange(corpus.Options{Docs: 1500, Seed: 3})
	shards, err := dist.EncodeShards(dist.Partition(data, 16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d docs in %d shards\n", data.Len(), len(shards))

	// Measure shard costs once (real loading + processing), then compose
	// each engine/cluster from the same measurements.
	process, err := core.MeasureRunner(recipe)
	if err != nil {
		log.Fatal(err)
	}
	costs, err := dist.Measure(shards, process)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-8s %8s %14s %14s\n", "engine", "nodes", "total", "of which load")
	for _, engine := range []dist.Engine{dist.EngineLocal, dist.EngineRay, dist.EngineBeam} {
		nodeCounts := []int{1, 2, 4, 8, 16}
		if engine == dist.EngineLocal {
			nodeCounts = []int{1}
		}
		for _, nodes := range nodeCounts {
			res, err := dist.Compose(engine, costs, dist.Config{Nodes: nodes, CoresPerNode: 64})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %8d %14s %14s\n", engine, nodes,
				res.Total.Round(10*time.Microsecond), res.LoadTime.Round(10*time.Microsecond))
		}
	}
	fmt.Println("\n=> the ray-like runner's time falls near-linearly with nodes;")
	fmt.Println("   the beam-like runner stays flat because one loader feeds the")
	fmt.Println("   whole cluster — the Figure 10 bottleneck.")
}
