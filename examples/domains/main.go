// Domains: the Sec. 7.3 real-world deployment story — three products with
// different textual needs (financial analysis, reading assistance, AI
// character role-play) served by recombining the same operator pool with
// different hyper-parameters, then probed to show each recipe selected
// the texture its product needs.
//
//	go run ./examples/domains
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/format"
	_ "repro/internal/ops/all"
)

func main() {
	// One shared heterogeneous pool: web prose, long books, Q&A dialogs
	// and instruction data all mixed together.
	web, err := format.Load("hub:c4?docs=300&seed=41")
	if err != nil {
		log.Fatal(err)
	}
	books, _ := format.Load("hub:books?docs=40&seed=42")
	qa, _ := format.Load("hub:stackexchange?docs=150&seed=43")
	chat, _ := format.Load("hub:cft-en?docs=300&seed=44")
	pool := dataset.Concat(web, books, qa, chat)
	fmt.Printf("shared candidate pool: %d samples\n\n", pool.Len())

	domains := []struct {
		recipe string
		needs  string
		dims   []string
	}{
		{"domain-financial", "digit-bearing, standardized text", []string{"digit_ratio", "num_words"}},
		{"domain-reading", "long, coherent documents", []string{"text_len", "num_paragraphs"}},
		{"domain-roleplay", "dialog-rich, safe instruction data", []string{"num_words", "flagged_words_ratio"}},
	}
	for _, d := range domains {
		r, err := config.BuiltinRecipe(d.recipe)
		if err != nil {
			log.Fatal(err)
		}
		r.UseCache = false
		r.DatasetPath = "" // we feed the pool directly
		exec, err := core.NewExecutor(r)
		if err != nil {
			log.Fatal(err)
		}
		out, _, err := exec.Run(pool.Clone())
		if err != nil {
			log.Fatal(err)
		}
		probe := analysis.Analyze(out, 0)
		fmt.Printf("%s (%s): kept %d of %d\n", d.recipe, d.needs, out.Len(), pool.Len())
		for _, dim := range d.dims {
			s := probe.Dims[dim]
			fmt.Printf("    %-22s mean %10.3f  median %10.3f\n", dim, s.Mean, s.P50)
		}
		fmt.Println()
	}
	fmt.Println("=> one operator pool, three products: each recipe reshapes the")
	fmt.Println("   same candidates toward its domain's texture (Sec. 7.3).")
}
