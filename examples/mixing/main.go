// Mixing: weighted multi-source ingestion end-to-end — a recipe with a
// sources: list interleaves three corpora by weight with per-sample
// provenance tags, runs on the batch executor, then runs the identical
// spec on the shard-pipelined streaming engine and verifies the exports
// match byte for byte. See docs/recipes.md for the full reference.
//
//	go run ./examples/mixing
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/format"
	_ "repro/internal/ops/all"
	"repro/internal/sample"
	"repro/internal/stream"
)

const recipeYAML = `
project_name: mixing-demo
use_cache: false
sources:
  - spec: "hub:web-en?docs=300&seed=21"
    weight: 3
  - spec: "hub:wiki?docs=150&seed=22"
    weight: 1
  - spec: "hub:books?docs=100&seed=23"
    weight: 1
    max_samples: 60
process:
  - fix_unicode_mapper:
  - clean_links_mapper:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 15
  - document_deduplicator:
`

func main() {
	recipe, err := config.ParseRecipe(recipeYAML)
	if err != nil {
		log.Fatal(err)
	}

	// 1. The sources: list canonicalizes to one "mix:" spec — the exact
	//    string -input would accept — and both backends open it.
	spec := recipe.DatasetSpec()
	fmt.Printf("input spec: %s\n\n", spec)

	// 2. Batch: drain the weighted mixture and run the recipe.
	data, err := core.LoadInput(recipe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mixed input: %d samples\n", data.Len())
	histogram("input provenance (meta.source)", data.Samples)

	exec, err := core.NewExecutor(recipe)
	if err != nil {
		log.Fatal(err)
	}
	out, report, err := exec.Run(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch: %d -> %d samples in %s\n", report.InCount(), out.Len(), report.Total.Round(1e6))
	histogram("refined provenance", out.Samples)

	dir, err := os.MkdirTemp("", "mixing-demo-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	batchPath := filepath.Join(dir, "batch.jsonl")
	if err := format.Export(out, batchPath); err != nil {
		log.Fatal(err)
	}

	// 3. Streaming: the same spec, read incrementally shard by shard.
	eng, err := stream.New(recipe, stream.Options{ShardSize: 64})
	if err != nil {
		log.Fatal(err)
	}
	src, err := stream.OpenSource(spec, 64)
	if err != nil {
		log.Fatal(err)
	}
	sink, err := stream.NewShardedJSONLSink(filepath.Join(dir, "stream"))
	if err != nil {
		log.Fatal(err)
	}
	streamRep, err := eng.Run(src, sink)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstream: %d -> %d samples in %d shards\n",
		streamRep.InCount, streamRep.OutCount, len(sink.Paths()))

	// 4. The conformance contract: batch and stream exports are
	//    byte-identical over the mixed multi-format input.
	batchBytes, _ := os.ReadFile(batchPath)
	var streamBytes []byte
	for _, p := range sink.Paths() {
		raw, _ := os.ReadFile(p)
		streamBytes = append(streamBytes, raw...)
	}
	if string(batchBytes) == string(streamBytes) {
		fmt.Printf("exports byte-identical across backends (%d bytes)\n", len(batchBytes))
	} else {
		log.Fatalf("exports diverge: batch %d bytes, stream %d bytes", len(batchBytes), len(streamBytes))
	}
}

// histogram prints per-source sample counts.
func histogram(title string, samples []*sample.Sample) {
	counts := map[string]int{}
	for _, s := range samples {
		src, _ := s.GetString("meta.source")
		counts[src]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("%s:\n", title)
	for _, k := range keys {
		fmt.Printf("  %-32s %d\n", k, counts[k])
	}
}
