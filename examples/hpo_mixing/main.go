// HPO mixing: the Sec. 4.1 worked example — search data-mixture weights
// with the TPE optimizer, maximizing the paper's target metric
// n/N + quality score, then inspect parameter importance (Figure 3).
//
//	go run ./examples/hpo_mixing
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	scale := experiments.Quick()
	scale.SourceDocs = 80 // keep the example snappy

	fmt.Println("searching mixture weights over {wiki, c4, raw web} with TPE...")
	fmt.Println("target metric: kept-token fraction (after dedup) + avg quality score")
	res, err := experiments.Fig3HPO(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Render)
	fmt.Println()
	fmt.Printf("best mixture: wiki=%.2f c4=%.2f web=%.2f (value %.4f)\n",
		res.Best.Params["w_wiki"], res.Best.Params["w_c4"], res.Best.Params["w_web"], res.Best.Value)
	fmt.Println("\n=> the optimizer discovers what the paper's Figure 3 shows:")
	fmt.Println("   clean-source weights carry positive correlation with the target,")
	fmt.Println("   the raw-web weight is the least helpful dimension.")
}
