// Quickstart: the minimal Data-Juicer loop — load a dataset, define a
// recipe, process it, and inspect what every operator did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/format"
	_ "repro/internal/ops/all"
)

const recipeYAML = `
project_name: quickstart
np: 0
use_cache: false
trace: true
op_fusion: true
process:
  - fix_unicode_mapper:
  - clean_links_mapper:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 20
  - stopwords_filter:
      lang: en
      min_ratio: 0.1
  - flagged_words_filter:
      lang: en
      max_ratio: 0.01
  - document_deduplicator:
`

func main() {
	// 1. Load data. "hub:" resolves built-in synthetic corpora; point this
	//    at a .jsonl/.csv/.txt file or a directory for real data.
	data, err := format.Load("hub:web-en?docs=300&seed=42")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d samples\n", data.Len())

	// 2. Parse the recipe and build the executor (planning — fusion and
	// cost-based reordering — happens here, in internal/plan).
	recipe, err := config.ParseRecipe(recipeYAML)
	if err != nil {
		log.Fatal(err)
	}
	exec, err := core.NewExecutor(recipe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexecution plan after OP fusion:")
	fmt.Print(exec.Plan().Describe())

	// 3. Run.
	before := analysis.Analyze(data, 0)
	out, report, err := exec.Run(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nkept %d of %d samples in %s\n",
		out.Len(), report.InCount(), report.Total.Round(1e6))

	// 4. Inspect per-OP lineage (the tracer view of Figure 4).
	fmt.Println("\nper-op pipeline effect:")
	fmt.Print(exec.Tracer().Summary())

	// 5. Compare data probes before and after (Figure 4c).
	after := analysis.Analyze(out, 0)
	fmt.Println("\nprobe diff (selected dimensions):")
	for _, d := range analysis.Compare(before, after) {
		switch d.Name {
		case "special_char_ratio", "flagged_words_ratio", "num_words", "stopwords_ratio":
			fmt.Printf("  %-22s %8.3f -> %8.3f\n", d.Name, d.MeanBefore, d.MeanAfter)
		}
	}

	// 6. Export. Any of .jsonl / .json / .txt work.
	if err := format.Export(out, "quickstart_refined.jsonl"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote quickstart_refined.jsonl")
}
