//go:build race

package repro_test

// raceEnabled reports that this test binary was built with the race
// detector. Allocation-regression tests are skipped under it: race
// instrumentation adds its own allocations, so AllocsPerRun budgets
// only hold on uninstrumented builds.
func init() { raceEnabled = true }
