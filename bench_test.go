// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus the ablations called out in DESIGN.md. Each
// benchmark reports the headline metric of its experiment through b.Report
// metrics, so `go test -bench=. -benchmem` doubles as the reproduction
// harness (cmd/djbench prints the full tables).
package repro_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/format"
	"repro/internal/ops"
	_ "repro/internal/ops/all"
	"repro/internal/stream"
)

// benchScale keeps benchmark iterations affordable.
func benchScale() experiments.Scale {
	s := experiments.Quick()
	s.SourceDocs = 100
	s.FinetunePool = 600
	s.PerfDocs = [3]int{40, 100, 250}
	s.DistDocs = 400
	return s
}

// --- E1: Figure 7 ---

func BenchmarkFig7PretrainCurve(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(s)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.Score, "refined@150_score")
	}
}

// --- E2 + E11: Table 2 / Table 9 ---

func BenchmarkTable2Models(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[2].Score, "dj@150_score")
		b.ReportMetric(res.Rows[1].Score, "pythia@300_score")
	}
}

// --- E3: Table 3 ---

func BenchmarkTable3Judging(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Rows[0].DJWins), "dj_wins_vs_alpaca")
		b.ReportMetric(float64(res.Rows[0].CompWins), "alpaca_wins")
	}
}

// --- E4 + E5: Tables 4 and 5 ---

func BenchmarkTable5Classifiers(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table5(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Metrics.F1*100, "gpt3_f1_pct")
		b.ReportMetric(res.Rows[2].Metrics.F1*100, "code_f1_pct")
	}
}

func BenchmarkTable4KeepRatios(b *testing.B) {
	s := benchScale()
	t5, err := experiments.Table5(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(s, t5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].KeepPareto*100, "pareto_keep_pct")
	}
}

// --- E6: Figure 8 (per-system end-to-end benchmarks) ---

func fig8Input(b *testing.B, docs int) (*dataset.Dataset, []string) {
	b.Helper()
	d := corpus.C4(corpus.Options{Docs: docs, Seed: 88})
	texts := make([]string, d.Len())
	for i, s := range d.Samples {
		texts[i] = s.Text
	}
	return d, texts
}

func BenchmarkFig8DataJuicer(b *testing.B) {
	d, _ := fig8Input(b, 300)
	r, err := config.ParseRecipe(baseline.ComparisonRecipeYAML)
	if err != nil {
		b.Fatal(err)
	}
	r.WorkDir = b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec, err := core.NewExecutor(r)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := exec.Run(d.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8RedPajama(b *testing.B) {
	_, texts := fig8Input(b, 300)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.RedPajamaRun(texts, dir, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Dolma(b *testing.B) {
	_, texts := fig8Input(b, 300)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.DolmaRun(texts, dir, 4, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: Figure 9 (fused vs unfused) ---

func benchFusionRecipe(b *testing.B, fusion bool) {
	b.Helper()
	d := corpus.C4(corpus.Options{Docs: 250, Seed: 99})
	yaml := `
project_name: bench-fusion
use_cache: false
process:
  - word_num_filter:
      min_num: 5
  - word_repetition_filter:
      rep_len: 5
      max_ratio: 0.6
  - stopwords_filter:
      min_ratio: 0.02
  - flagged_words_filter:
      max_ratio: 0.1
  - perplexity_filter:
      max_ppl: 1000000
`
	r, err := config.ParseRecipe(yaml)
	if err != nil {
		b.Fatal(err)
	}
	r.OpFusion = fusion
	r.WorkDir = b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec, err := core.NewExecutor(r)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := exec.Run(d.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Fused(b *testing.B)   { benchFusionRecipe(b, true) }
func BenchmarkFig9Unfused(b *testing.B) { benchFusionRecipe(b, false) }

// --- E8: Figure 10 ---

func BenchmarkFig10Distributed(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(s)
		if err != nil {
			b.Fatal(err)
		}
		var ray1, ray16 float64
		for _, c := range res.Cells {
			if c.Dataset == "arxiv" && c.Engine == "ray" {
				if c.Nodes == 1 {
					ray1 = float64(c.Total)
				}
				if c.Nodes == 16 {
					ray16 = float64(c.Total)
				}
			}
		}
		b.ReportMetric(ray1/ray16, "ray_speedup_16x")
	}
}

// --- E9 + E10: Tables 7 and 8 ---

func BenchmarkTable7Tokens(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table7(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Proportion*100, "top_component_pct")
	}
}

func BenchmarkTable8Census(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table8(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E12: Figure 3 ---

func BenchmarkFig3HPO(b *testing.B) {
	s := benchScale()
	s.SourceDocs = 60
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3HPO(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Best.Value, "best_mix_value")
	}
}

// --- A1: context-sharing ablation ---

func benchContextAblation(b *testing.B, shared bool) {
	b.Helper()
	d := corpus.C4(corpus.Options{Docs: 200, Seed: 77})
	names := []string{"word_num_filter", "word_repetition_filter", "stopwords_filter", "flagged_words_filter"}
	filters := make([]ops.Filter, len(names))
	for i, n := range names {
		op, err := ops.Build(n, nil)
		if err != nil {
			b.Fatal(err)
		}
		filters[i] = op.(ops.Filter)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range d.Samples {
			for _, f := range filters {
				if err := f.ComputeStats(s); err != nil {
					b.Fatal(err)
				}
				if !shared {
					s.ClearContext() // recompute words for every filter
				}
			}
			s.ClearContext()
			s.Stats.Reset()
		}
	}
}

func BenchmarkAblationContextShared(b *testing.B)   { benchContextAblation(b, true) }
func BenchmarkAblationContextUnshared(b *testing.B) { benchContextAblation(b, false) }

// --- A2: cache compression ablation ---

func BenchmarkAblationCompression(b *testing.B) {
	d := corpus.C4(corpus.Options{Docs: 300, Seed: 55})
	for _, codec := range []string{"none", "gzip", "flate", "lzj"} {
		b.Run(codec, func(b *testing.B) {
			dir := b.TempDir()
			store, err := cache.NewStore(dir, codec)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := store.Put("k", d); err != nil {
					b.Fatal(err)
				}
				if _, ok, err := store.Get("k"); err != nil || !ok {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if size, err := store.SizeOnDisk(); err == nil {
				b.ReportMetric(float64(size), "bytes_on_disk")
			}
			os.RemoveAll(dir)
		})
	}
}

// --- A3: typed sample vs generic map rows ---

func BenchmarkAblationRowRepr(b *testing.B) {
	for i := 0; i < b.N; i++ {
		typed, generic, err := experiments.AblationRowRepr(150, 66)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(generic)/float64(typed), "generic_over_typed")
	}
}

// --- micro-benchmarks: operator throughput ---

func benchOneFilter(b *testing.B, name string) {
	b.Helper()
	d := corpus.C4(corpus.Options{Docs: 200, Seed: 44})
	op, err := ops.Build(name, nil)
	if err != nil {
		b.Fatal(err)
	}
	f := op.(ops.Filter)
	var bytes int64
	for _, s := range d.Samples {
		bytes += int64(len(s.Text))
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range d.Samples {
			if err := f.ComputeStats(s); err != nil {
				b.Fatal(err)
			}
			f.Keep(s)
			s.ClearContext()
			s.Stats.Reset()
		}
	}
}

func BenchmarkFilterWordNum(b *testing.B)    { benchOneFilter(b, "word_num_filter") }
func BenchmarkFilterStopwords(b *testing.B)  { benchOneFilter(b, "stopwords_filter") }
func BenchmarkFilterCharRep(b *testing.B)    { benchOneFilter(b, "character_repetition_filter") }
func BenchmarkFilterLanguageID(b *testing.B) { benchOneFilter(b, "language_id_score_filter") }
func BenchmarkFilterPerplexity(b *testing.B) { benchOneFilter(b, "perplexity_filter") }

func BenchmarkDedupExact(b *testing.B)   { benchDedup(b, "document_deduplicator") }
func BenchmarkDedupMinhash(b *testing.B) { benchDedup(b, "document_minhash_deduplicator") }
func BenchmarkDedupSimhash(b *testing.B) { benchDedup(b, "document_simhash_deduplicator") }

func benchDedup(b *testing.B, name string) {
	b.Helper()
	d := corpus.Web(corpus.Options{Docs: 300, Seed: 33})
	op, err := ops.Build(name, nil)
	if err != nil {
		b.Fatal(err)
	}
	dd := op.(ops.Deduplicator)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dd.Dedup(d, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineThroughput(b *testing.B) {
	d := corpus.C4(corpus.Options{Docs: 400, Seed: 22})
	r, err := config.BuiltinRecipe("aggressive-clean")
	if err != nil {
		b.Fatal(err)
	}
	r.UseCache = false
	r.WorkDir = b.TempDir()
	b.SetBytes(d.TotalBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec, err := core.NewExecutor(r)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := exec.Run(d.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

// sanity: the benchmark file compiles against a fmt-using helper.
var _ = fmt.Sprintf

// --- Execution backends: batch vs shard-pipelined streaming ---
//
// The streaming engine's claim is architectural: peak memory stays
// O(shards in flight) as the corpus grows, while the batch executor's
// peak scales linearly with corpus size (it holds everything). Each
// benchmark reports peak_heap_MB alongside throughput so
// `go test -bench 'Exec(Batch|Stream)' -benchtime 1x` renders the
// comparison across corpus sizes.

const benchStreamRecipe = `
project_name: backend-bench
use_cache: false
op_fusion: true
process:
  - clean_links_mapper:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 5
  - document_deduplicator:
`

var benchCorpusFiles = map[int]string{}

// benchCorpusFile materializes a hub corpus of the given size as a JSONL
// file once per process, outside benchmark timing.
func benchCorpusFile(b *testing.B, docs int) string {
	b.Helper()
	if path, ok := benchCorpusFiles[docs]; ok {
		return path
	}
	d := corpus.Web(corpus.Options{Docs: docs, Seed: 77})
	dir, err := os.MkdirTemp("", "djbench")
	if err != nil {
		b.Fatal(err)
	}
	path := fmt.Sprintf("%s/corpus-%d.jsonl", dir, docs)
	if err := d.SaveJSONL(path); err != nil {
		b.Fatal(err)
	}
	benchCorpusFiles[docs] = path
	return path
}

// trackPeakHeap samples the live heap until stopped and reports the
// maximum observed, in bytes.
func trackPeakHeap() (stop func() uint64) {
	var (
		peak uint64
		quit = make(chan struct{})
		done = make(chan struct{})
	)
	runtime.GC()
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			select {
			case <-quit:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()
	return func() uint64 {
		close(quit)
		<-done
		return peak
	}
}

var backendBenchSizes = []int{500, 2000, 8000}

func BenchmarkExecBatch(b *testing.B) {
	for _, docs := range backendBenchSizes {
		b.Run(fmt.Sprintf("docs=%d", docs), func(b *testing.B) {
			path := benchCorpusFile(b, docs)
			r, err := config.ParseRecipe(benchStreamRecipe)
			if err != nil {
				b.Fatal(err)
			}
			r.WorkDir = b.TempDir()
			var peak uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stop := trackPeakHeap()
				data, err := format.Load(path)
				if err != nil {
					b.Fatal(err)
				}
				exec, err := core.NewExecutor(r)
				if err != nil {
					b.Fatal(err)
				}
				out, _, err := exec.Run(data)
				if err != nil {
					b.Fatal(err)
				}
				if p := stop(); p > peak {
					peak = p
				}
				_ = out
			}
			b.ReportMetric(float64(peak)/(1<<20), "peak_heap_MB")
			b.ReportMetric(float64(docs)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
		})
	}
}

// benchStream shares the measurement harness between the fixed-shard and
// adaptive streaming benchmarks.
func benchStream(b *testing.B, docs int, opts stream.Options) {
	b.Helper()
	path := benchCorpusFile(b, docs)
	r, err := config.ParseRecipe(benchStreamRecipe)
	if err != nil {
		b.Fatal(err)
	}
	r.WorkDir = b.TempDir()
	var peak uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stop := trackPeakHeap()
		eng, err := stream.New(r, opts)
		if err != nil {
			b.Fatal(err)
		}
		src, err := stream.OpenSource(path, opts.ShardSize)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(src, stream.DiscardSink{}); err != nil {
			b.Fatal(err)
		}
		if p := stop(); p > peak {
			peak = p
		}
	}
	b.ReportMetric(float64(peak)/(1<<20), "peak_heap_MB")
	b.ReportMetric(float64(docs)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
}

func BenchmarkExecStream(b *testing.B) {
	for _, docs := range backendBenchSizes {
		b.Run(fmt.Sprintf("docs=%d", docs), func(b *testing.B) {
			benchStream(b, docs, stream.Options{ShardSize: 256})
		})
	}
}

// BenchmarkExecStreamAdaptive runs the same recipe with the runtime
// controller deciding shard size, worker count and backpressure under a
// 256MB resident-text target. Compare against BenchmarkExecStream
// (fixed) and BenchmarkExecBatch; BENCH_stream_adaptive.json records one
// captured comparison.
func BenchmarkExecStreamAdaptive(b *testing.B) {
	for _, docs := range backendBenchSizes {
		b.Run(fmt.Sprintf("docs=%d", docs), func(b *testing.B) {
			benchStream(b, docs, stream.Options{
				ShardSize:      256,
				Adaptive:       true,
				TargetMemBytes: 256 << 20,
			})
		})
	}
}

// planSkewRecipe is a skewed-selectivity workload for the planner
// benchmark: by static cost hints the cheap unselective character
// filters run first and the word_num filter (hint 2, tied with
// character_repetition but later in the recipe) runs near the end — yet
// on this corpus word_num drops ~90% of the documents. The measured-cost
// plan learns that (cost × selectivity) and moves it to the front, so
// every later filter scans a tenth of the data.
const planSkewRecipe = `
project_name: plan-bench
use_cache: false
op_fusion: true
process:
  - special_characters_filter:
      max_ratio: 0.9
  - character_repetition_filter:
      rep_len: 3
      max_ratio: 0.95
  - word_num_filter:
      min_num: 180
`

// BenchmarkPlannedVsStatic compares measured-cost ordering (profiles
// persisted by a priming run) against static CostHint ordering on the
// skewed-selectivity recipe above. BENCH_plan.json records one captured
// comparison.
func BenchmarkPlannedVsStatic(b *testing.B) {
	for _, mode := range []struct {
		name     string
		profiled bool
	}{
		{"static", false},
		{"planned", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			const docs = 4000
			path := benchCorpusFile(b, docs)
			r, err := config.ParseRecipe(planSkewRecipe)
			if err != nil {
				b.Fatal(err)
			}
			r.NP = 1 // isolate plan order from scheduling noise
			r.UseProfiles = mode.profiled
			r.WorkDir = b.TempDir()
			if mode.profiled {
				// Priming run: persist measured profiles so the timed
				// executors plan from them.
				data, err := format.Load(path)
				if err != nil {
					b.Fatal(err)
				}
				prime, err := core.NewExecutor(r)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := prime.Run(data); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, err := format.Load(path)
				if err != nil {
					b.Fatal(err)
				}
				exec, err := core.NewExecutor(r)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := exec.Run(data); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(docs)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
		})
	}
}
