// Command djbench regenerates the paper's tables and figures on the
// synthetic substrate (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	djbench all                 # every experiment, quick scale
//	djbench -full fig7 table2   # selected experiments, report scale
//
// Experiments: fig3 fig7 fig8 fig9 fig10 table2 table3 table4 table5
// table7 table8 table9
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	full := flag.Bool("full", false, "run at report scale (slower)")
	listen := flag.String("listen", "", "serve /debug/pprof/* and runtime /metrics on this address while experiments run (see docs/observability.md)")
	flag.Parse()
	if *listen != "" {
		// Experiments drive pipelines internally; the endpoint exposes the
		// process-level view (pprof, goroutines, heap) for long runs.
		t, err := telemetry.NewRun(telemetry.RunOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "djbench:", err)
			os.Exit(1)
		}
		srv, err := t.Serve(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "djbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("ops endpoint on http://%s (/metrics /debug/pprof/)\n", srv.Addr())
	}
	scale := experiments.Quick()
	if *full {
		scale = experiments.Full()
	}
	targets := flag.Args()
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "djbench: name experiments or 'all' (fig3 fig7 fig8 fig9 fig10 table1..table9)")
		os.Exit(2)
	}
	if len(targets) == 1 && targets[0] == "all" {
		targets = []string{"table1", "table6", "table7", "table8", "table5", "table4", "fig7", "table2", "table9", "table3", "fig3", "fig8", "fig9", "fig10"}
	}

	var t2 *experiments.Table2Result
	var t5 *experiments.Table5Result
	for _, name := range targets {
		var render string
		var err error
		switch name {
		case "table1":
			render = experiments.Table1()
		case "table6":
			render = experiments.Table6()
		case "fig3":
			var r *experiments.Fig3Result
			r, err = experiments.Fig3HPO(scale)
			if err == nil {
				render = r.Render
			}
		case "fig7":
			var r *experiments.Fig7Result
			r, err = experiments.Fig7(scale)
			if err == nil {
				render = r.Render
			}
		case "fig8":
			var r *experiments.Fig8Result
			r, err = experiments.Fig8(scale, nil)
			if err == nil {
				render = r.Render
			}
		case "fig9":
			var r *experiments.Fig9Result
			r, err = experiments.Fig9(scale, 0)
			if err == nil {
				render = r.Render
			}
		case "fig10":
			var r *experiments.Fig10Result
			r, err = experiments.Fig10(scale)
			if err == nil {
				render = r.Render
			}
		case "table2":
			t2, err = experiments.Table2(scale)
			if err == nil {
				render = t2.Render
			}
		case "table3":
			var r *experiments.Table3Result
			r, err = experiments.Table3(scale)
			if err == nil {
				render = r.Render
			}
		case "table4":
			var r *experiments.Table4Result
			r, err = experiments.Table4(scale, t5)
			if err == nil {
				render = r.Render
			}
		case "table5":
			t5, err = experiments.Table5(scale)
			if err == nil {
				render = t5.Render
			}
		case "table7":
			var r *experiments.Table7Result
			r, err = experiments.Table7(scale)
			if err == nil {
				render = r.Render
			}
		case "table8":
			var r *experiments.Table8Result
			r, err = experiments.Table8(scale)
			if err == nil {
				render = r.Render
			}
		case "table9":
			if t2 == nil {
				t2, err = experiments.Table2(scale)
			}
			if err == nil {
				render = experiments.Table9(t2)
			}
		default:
			fmt.Fprintf(os.Stderr, "djbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "djbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(render)
	}
}
