// Command djanalyze computes the analyzer's data probe for a dataset:
// dimension summaries, ASCII histograms and box plots, and verb–noun
// diversity — the terminal rendering of the paper's interactive
// visualizations (Sec. 4.2).
//
// It also renders run journals: -timeline reconstructs per-op and
// per-shard wall-time attribution from the JSONL event stream djprocess
// writes under <work_dir>/journal/ (see docs/observability.md).
//
// Usage:
//
//	djanalyze -input data.jsonl [-dims text_len,num_words] [-hist] [-box] [-top 15]
//	djanalyze -input "hub:cft-en?docs=500" -diversity
//	djanalyze -timeline .data-juicer/journal/<run_id>.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/format"
	"repro/internal/telemetry"
)

func main() {
	var (
		input     = flag.String("input", "", "dataset spec (file, directory, or hub:<name>)")
		dims      = flag.String("dims", "", "comma-separated dimensions to visualize (default: all in the summary, none plotted)")
		hist      = flag.Bool("hist", false, "render histograms for the selected dimensions")
		box       = flag.Bool("box", false, "render box plots for the selected dimensions")
		diversity = flag.Bool("diversity", false, "render the verb-noun diversity view")
		top       = flag.Int("top", 15, "top-K rows in the diversity view")
		np        = flag.Int("np", 0, "worker count (0 = all cores)")
		jsonOut   = flag.String("json", "", "also write the probe summaries as JSON to this path")
		timeline  = flag.String("timeline", "", "render per-op/per-shard wall-time attribution from a run journal (.jsonl) and exit")
	)
	flag.Parse()
	if *timeline != "" {
		renderTimeline(*timeline)
		return
	}
	if *input == "" {
		fmt.Fprintln(os.Stderr, "djanalyze: -input is required")
		os.Exit(1)
	}
	data, err := format.Load(*input)
	if err != nil {
		fmt.Fprintln(os.Stderr, "djanalyze:", err)
		os.Exit(1)
	}
	probe := analysis.Analyze(data, *np)
	fmt.Printf("data probe: %d samples, unique-word ratio %.3f\n\n", probe.N, probe.UniqueWordRatio)
	fmt.Print(probe.RenderSummaryTable())

	var selected []string
	if *dims != "" {
		for _, d := range strings.Split(*dims, ",") {
			selected = append(selected, strings.TrimSpace(d))
		}
	}
	for _, dim := range selected {
		values := probe.Values(dim)
		if values == nil {
			fmt.Fprintf(os.Stderr, "djanalyze: unknown dimension %q (have %v)\n", dim, probe.DimNames())
			os.Exit(1)
		}
		fmt.Println()
		if *hist {
			fmt.Print(analysis.RenderHistogram(dim, values, 12, 40))
		}
		if *box {
			fmt.Print(analysis.RenderBoxPlot(dim, values, 60))
		}
	}
	if *diversity {
		fmt.Println()
		fmt.Print(probe.RenderDiversity(*top))
	}
	if *jsonOut != "" {
		payload := map[string]any{
			"n":                 probe.N,
			"unique_word_ratio": probe.UniqueWordRatio,
			"dims":              probe.Dims,
			"diversity":         probe.Diversity,
		}
		raw, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "djanalyze:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "djanalyze:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote probe JSON to %s\n", *jsonOut)
	}
}

// renderTimeline validates a journal file and prints its wall-time
// attribution view.
func renderTimeline(path string) {
	events, err := telemetry.ReadJournal(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "djanalyze:", err)
		os.Exit(1)
	}
	tl, err := telemetry.BuildTimeline(events)
	if err != nil {
		fmt.Fprintln(os.Stderr, "djanalyze:", err)
		os.Exit(1)
	}
	fmt.Print(tl.Render())
}
