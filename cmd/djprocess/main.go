// Command djprocess runs a data recipe end-to-end: load → process →
// export, with optional plan display, tracing and probe analysis. Two
// execution backends are available: the default batch executor
// (whole-dataset, op by op) and the shard-pipelined streaming engine
// (-stream), which bounds peak memory for corpora larger than RAM.
//
// Inputs resolve through the unified ingestion layer (internal/format):
// jsonl/json/csv/tsv/txt/md/html/code files, transparently gzip-
// decompressed ".gz" variants, directories, globs, "hub:" synthetic
// corpora, and "mix:" weighted multi-source mixtures — on either
// backend. See docs/recipes.md for the full spec and recipe reference.
//
// Usage:
//
//	djprocess -recipe recipe.yaml [-input PATH] [-output PATH] [-np N]
//	djprocess -builtin pretrain-web-en -input "hub:web-en?docs=500&seed=1" -output out.jsonl
//	djprocess -builtin minimal-clean -input "mix:a.jsonl@2,b.csv.gz@1" -output mixed.jsonl
//	djprocess -stream -shard-size 1024 -recipe recipe.yaml -input "data/*.jsonl.gz" -output out.jsonl
//	djprocess -stream -adaptive -max-workers 16 -target-mem-mb 512 -recipe recipe.yaml -input big.jsonl -output out.jsonl
//	djprocess -workers 4 -recipe recipe.yaml -input big.jsonl -output out.jsonl
//	djprocess -explain -recipe recipe.yaml
//	djprocess -list-ops | -list-recipes
//
// -workers N (or -worker-addrs) switches on the multi-process
// coordinator: shard-local stages are shipped to a fleet of djworker
// subprocesses while dedup indexes, barriers and export stay in this
// process, keeping the output byte-identical to a single-process run —
// including when workers crash mid-run. See docs/distributed.md.
//
// Both backends execute the physical plan of the unified planner
// (internal/plan): measured-cost reordering, context-sharing fusion, and
// streaming capability placement. -explain prints that plan — per-op
// predicted cost and selectivity (from the recipe's profile sidecar when
// previous runs measured them), capability class, and which pass moved
// or fused each op — without running anything.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/format"
	_ "repro/internal/ops/all"
	"repro/internal/plan"
	"repro/internal/remote"
	"repro/internal/stream"
	"repro/internal/telemetry"

	"repro/internal/ops"
)

func main() {
	var (
		recipePath  = flag.String("recipe", "", "path to a recipe .yaml/.json file")
		builtin     = flag.String("builtin", "", "name of a built-in recipe (see -list-recipes)")
		input       = flag.String("input", "", "dataset spec (file, dir, glob, hub:<name>, or mix:spec@w,...; .gz transparent); overrides the recipe's dataset_path/sources")
		output      = flag.String("output", "", "export path (.jsonl/.json/.txt; .txt drops meta/stats); overrides the recipe's export_path")
		np          = flag.Int("np", 0, "worker count (0 = all cores)")
		streamMode  = flag.Bool("stream", false, "use the shard-pipelined streaming engine (bounded memory)")
		shardSize   = flag.Int("shard-size", stream.DefaultShardSize, "samples per shard in -stream mode (starting point with -adaptive)")
		adaptive    = flag.Bool("adaptive", false, "let the runtime controller retune shard size, workers and backpressure from live measurements (implies -stream)")
		maxWorkers  = flag.Int("max-workers", 0, "cap on the adaptive worker pool (0 = max of -np and all cores)")
		targetMemMB = flag.Int("target-mem-mb", 0, "memory target in MB: bounds dedup index memory via disk spilling (both backends), and with -adaptive also the text bytes resident across in-flight shards (0 = unbounded)")
		noSpill     = flag.Bool("no-dedup-spill", false, "keep dedup indexes fully in memory even when -target-mem-mb is set")
		indexParts  = flag.Int("index-partitions", 0, "partitions of the streaming shared signature index (0 = auto from worker count; rounded up to a power of two; output is identical at any setting)")
		showPlan    = flag.Bool("plan", false, "print the fused execution plan before running")
		explain     = flag.Bool("explain", false, "print the optimized plan — per-op predicted cost, selectivity, capability class, and per-pass provenance — and exit without running")
		probe       = flag.Bool("probe", false, "print before/after data probes (analyzer; batch mode only)")
		space       = flag.Bool("space", false, "print the Appendix A.2 peak-disk-space analysis (batch mode only)")
		listOps     = flag.Bool("list-ops", false, "list the registered operators and exit (see internal/ops/README.md)")
		listRecipes = flag.Bool("list-recipes", false, "list the built-in recipes with their input requirements and exit")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file (see docs/performance.md)")
		memProfile  = flag.String("memprofile", "", "write a pprof allocation profile at exit to this file (see docs/performance.md)")
		workers     = flag.Int("workers", 0, "spawn this many djworker subprocesses and distribute shard-local stages across them (implies -stream; see docs/distributed.md)")
		workerAddrs = flag.String("worker-addrs", "", "comma-separated addresses of already-running djworkers to use instead of spawning (implies -stream)")
		workerBin   = flag.String("worker-bin", "", "djworker binary to spawn (default: djworker next to this binary, then $PATH)")
		distTimeout = flag.Duration("dist-timeout", 0, "per-stage timeout in distributed mode; a worker exceeding it is treated as failed (default 2m)")
		distComp    = flag.Bool("dist-compress", false, "compress coordinator<->worker frames on the v2 dispatch wire (recipe key dist_compress; see docs/distributed.md)")
		listen      = flag.String("listen", "", "serve the live ops endpoint on this address during the run: /metrics, /progress, /debug/pprof/* (see docs/observability.md)")
		linger      = flag.Bool("listen-linger", false, "keep the -listen endpoint serving after the run completes, until interrupted")
		noJournal   = flag.Bool("no-journal", false, "disable the structured run journal (<work_dir>/journal/<run_id>.jsonl)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(fmt.Errorf("cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(fmt.Errorf("cpuprofile: %w", err))
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "djprocess: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "djprocess: memprofile:", err)
			}
		}()
	}

	if *listOps {
		for _, info := range ops.List() {
			fmt.Printf("%-48s %-13s %s\n", info.Name, info.Category, info.Usage)
		}
		return
	}
	if *listRecipes {
		listBuiltinRecipes()
		return
	}

	recipe, err := loadRecipe(*recipePath, *builtin)
	if err != nil {
		fatal(err)
	}
	if *input != "" {
		recipe.DatasetPath = *input
		recipe.Sources = nil
	}
	if *output != "" {
		recipe.ExportPath = *output
	}
	if *np != 0 {
		recipe.NP = *np
	}
	if *adaptive {
		recipe.Adaptive = true
	}
	if *maxWorkers != 0 {
		recipe.MaxWorkers = *maxWorkers
	}
	if *targetMemMB != 0 {
		recipe.TargetMemMB = *targetMemMB
	}
	if *noSpill {
		recipe.DedupSpill = false
	}
	if *indexParts != 0 {
		recipe.IndexPartitions = *indexParts
	}
	if *distComp {
		recipe.DistCompress = true
	}
	if !recipe.Adaptive && recipe.MaxWorkers != 0 {
		fmt.Fprintln(os.Stderr, "djprocess: -max-workers only takes effect with -adaptive; ignored")
	}
	// -explain plans the recipe exactly as a run would see it, so it
	// must come after every recipe-overriding flag above.
	if *explain {
		p, err := plan.Build(recipe)
		if err != nil {
			fatal(err)
		}
		fmt.Print(p.Explain())
		return
	}
	inputSpec := recipe.DatasetSpec()
	if inputSpec == "" {
		fatal(fmt.Errorf("no dataset: set dataset_path or sources in the recipe, or pass -input"))
	}
	if *listen != "" {
		recipe.Listen = *listen
	}
	if *noJournal {
		recipe.Journal = false
	}
	recipeSrc := *recipePath
	if recipeSrc == "" {
		recipeSrc = *builtin
	}

	dopts := distOptions{
		workers: *workers,
		bin:     *workerBin,
		timeout: *distTimeout,
	}
	if *workerAddrs != "" {
		for _, a := range strings.Split(*workerAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				dopts.addrs = append(dopts.addrs, a)
			}
		}
	}
	distributed := dopts.workers > 0 || len(dopts.addrs) > 0

	tele, srv := openTelemetry(recipe)
	if *streamMode || recipe.Adaptive || distributed {
		runStreaming(recipe, recipeSrc, inputSpec, *shardSize, *showPlan, *probe || *space, tele, dopts)
	} else {
		runBatch(recipe, recipeSrc, inputSpec, *showPlan, *probe, *space, tele)
	}
	finishTelemetry(tele, srv, *linger)
}

// openTelemetry builds the run's telemetry context from the recipe: the
// JSONL journal under <work_dir>/journal unless disabled, the console
// renderer over the same event stream, and the live ops endpoint when a
// listen address is configured (-listen flag or listen: recipe key).
func openTelemetry(recipe *config.Recipe) (*telemetry.Run, *telemetry.Server) {
	opts := telemetry.RunOptions{}
	if recipe.Journal && recipe.WorkDir != "" {
		opts.JournalDir = filepath.Join(recipe.WorkDir, "journal")
	}
	t, err := telemetry.NewRun(opts)
	if err != nil {
		fatal(err)
	}
	t.OnEvent(telemetry.Console(os.Stdout))
	var srv *telemetry.Server
	if recipe.Listen != "" {
		srv, err = t.Serve(recipe.Listen)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ops endpoint on http://%s (/metrics /progress /debug/pprof/)\n", srv.Addr())
	}
	return t, srv
}

// finishTelemetry closes the run's observability surfaces, optionally
// lingering so the endpoint outlives the run (CI scrapes, post-mortem
// pprof grabs).
func finishTelemetry(t *telemetry.Run, srv *telemetry.Server, linger bool) {
	if srv != nil && linger {
		fmt.Printf("ops endpoint still serving on http://%s — interrupt to exit\n", srv.Addr())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
	if srv != nil {
		srv.Close()
	}
	if err := t.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "djprocess: journal:", err)
	}
}

// failRun records the failure in the journal before exiting.
func failRun(t *telemetry.Run, err error) {
	t.End("error", 0, 0, err, nil)
	t.Close()
	fatal(err)
}

// runBatch executes the recipe on the whole-dataset batch executor.
func runBatch(recipe *config.Recipe, recipeSrc, inputSpec string, showPlan, probe, space bool, tele *telemetry.Run) {
	exec, err := core.NewExecutor(recipe)
	if err != nil {
		fatal(err)
	}
	exec.EnableTelemetry(tele)
	if showPlan {
		fmt.Println("execution plan:")
		fmt.Print(exec.Plan().Describe())
	}

	data, err := core.LoadInput(recipe)
	if err != nil {
		fatal(err)
	}
	tele.Begin("batch", recipeSrc, inputSpec, data.Len())

	if space {
		a, err := cache.AnalyzeSpace(recipe)
		if err != nil {
			failRun(tele, err)
		}
		fmt.Print(a.Render(data.TotalBytes()))
	}

	var before *analysis.Probe
	if probe {
		before = analysis.Analyze(data, recipe.NP)
	}

	out, report, err := exec.Run(data)
	if err != nil {
		failRun(tele, err)
	}

	if recipe.ExportPath != "" {
		if err := format.Export(out, recipe.ExportPath); err != nil {
			failRun(tele, err)
		}
		tele.Emit(telemetry.Event{Type: telemetry.EvExport, Input: recipe.ExportPath,
			Out: int64(out.Len())})
	}

	tele.End("ok", report.InCount(), out.Len(), nil, func(e *telemetry.Event) {
		e.PlanOps = report.PlanSize
		if report.Resumed {
			e.Note = "(resumed from checkpoint)"
		}
		if len(report.OpStats) == 0 {
			// Zero executed ops: the plan was empty or the whole run was
			// resumed past its last operator.
			e.Note = "(empty plan)"
			if report.Resumed {
				e.Note = "(fully resumed from checkpoint)"
			}
		}
	})
	fmt.Print(telemetry.FormatOpTable(core.TelemetryRows(report.OpStats)))
	if tr := exec.Tracer(); tr != nil {
		fmt.Print(tr.Summary())
	}

	if probe {
		after := analysis.Analyze(out, recipe.NP)
		fmt.Println("\nbefore/after probe (Figure 4c view):")
		fmt.Print(analysis.RenderCompare(analysis.Compare(before, after)))
		fmt.Println("\ndiversity of the refined data:")
		fmt.Print(after.RenderDiversity(10))
	}
}

// listBuiltinRecipes prints each shipped recipe with its input
// requirements: the dataset spec it carries (dataset_path or an encoded
// sources: mixture), or the marker for recipes that need -input.
func listBuiltinRecipes() {
	fmt.Printf("%-24s %-4s %s\n", "RECIPE", "OPS", "INPUT")
	for _, name := range config.BuiltinRecipeNames() {
		r, err := config.BuiltinRecipe(name)
		if err != nil {
			fatal(err)
		}
		in := r.DatasetSpec()
		if in == "" {
			in = "(requires -input)"
		}
		fmt.Printf("%-24s %-4d %s\n", name, len(r.Process), in)
	}
}

// distOptions carries the -workers/-worker-addrs/-worker-bin/-dist-
// timeout flags into the streaming runner.
type distOptions struct {
	workers int
	addrs   []string
	bin     string
	timeout time.Duration
}

func (d distOptions) enabled() bool { return d.workers > 0 || len(d.addrs) > 0 }

// runStreaming executes the recipe on the shard-pipelined engine: the
// input is never fully resident, and export shards appear as the stream
// progresses. With distributed options set it becomes the coordinator
// of a djworker fleet — shard-local stages run in the workers, dedup
// indexes, barriers and export stay here.
func runStreaming(recipe *config.Recipe, recipeSrc, inputSpec string, shardSize int, showPlan, probeOrSpace bool, tele *telemetry.Run, dopts distOptions) {
	if probeOrSpace {
		fmt.Fprintln(os.Stderr, "djprocess: -probe/-space need the full dataset; ignored in -stream mode")
	}
	backend := "stream"
	var pool *remote.Pool
	if dopts.enabled() {
		backend = "dist"
		var err error
		pool, err = remote.NewPool(remote.PoolOptions{
			Workers:      dopts.workers,
			Addrs:        dopts.addrs,
			WorkerBin:    dopts.bin,
			WorkDir:      recipe.WorkDir,
			StageTimeout: dopts.timeout,
		})
		if err != nil {
			fatal(err)
		}
		defer pool.Close()
	}
	opts := stream.Options{
		ShardSize:      shardSize,
		Adaptive:       recipe.Adaptive,
		MaxWorkers:     recipe.MaxWorkers,
		TargetMemBytes: int64(recipe.TargetMemMB) << 20,
		Telemetry:      tele,
	}
	if pool != nil {
		opts.Dispatch = pool
	}
	eng, err := stream.New(recipe, opts)
	if err != nil {
		fatal(err)
	}
	// run_start must be the journal's first event, so Begin precedes
	// Configure (which journals one worker_start per fleet member).
	tele.Begin(backend, recipeSrc, inputSpec, 0)
	if pool != nil {
		if err := pool.Configure(recipe, eng.Plan(), tele.ID(), tele); err != nil {
			failRun(tele, err)
		}
	}
	if showPlan {
		fmt.Println("streaming execution plan:")
		fmt.Print(eng.DescribePlan())
	}
	src, err := stream.OpenSource(inputSpec, shardSize)
	if err != nil {
		fatal(err)
	}
	var sink stream.Sink = stream.DiscardSink{}
	var sharded *stream.ShardedJSONLSink
	prefix := ""
	if recipe.ExportPath != "" {
		if !strings.EqualFold(".jsonl", filepath.Ext(recipe.ExportPath)) {
			fatal(fmt.Errorf("stream mode exports sharded JSONL; use a .jsonl export path (got %q)", recipe.ExportPath))
		}
		prefix = recipe.ExportPath[:len(recipe.ExportPath)-len(".jsonl")]
		sharded, err = stream.NewShardedJSONLSink(prefix)
		if err != nil {
			fatal(err)
		}
		sink = sharded
	}
	report, err := eng.Run(src, sink)
	if err != nil {
		failRun(tele, err)
	}
	if sharded != nil {
		tele.Emit(telemetry.Event{Type: telemetry.EvExport,
			Input: prefix + "-*.jsonl", Out: int64(report.OutCount),
			Note: fmt.Sprintf("%d shard files", len(sharded.Paths()))})
	}
	tele.End("ok", report.InCount, report.OutCount, nil, func(e *telemetry.Event) {
		e.PlanOps = report.PlanSize
		e.Shards = report.ShardCount
		e.Resumed = report.ResumedShards
	})
	// The same per-op snapshot the batch path renders, plus the adaptive
	// controller's self-report.
	fmt.Print(telemetry.FormatOpTable(core.TelemetryRows(report.OpStats)))
	fmt.Print(report.Metrics.Summary())
	fmt.Print(report.DistSummary())
	if tr := eng.Tracer(); tr != nil {
		fmt.Print(tr.Summary())
	}
}

func loadRecipe(path, builtin string) (*config.Recipe, error) {
	switch {
	case path != "" && builtin != "":
		return nil, fmt.Errorf("pass either -recipe or -builtin, not both")
	case path != "":
		return config.Load(path)
	case builtin != "":
		r, err := config.BuiltinRecipe(builtin)
		if err != nil {
			return nil, err
		}
		// DJ_* environment overrides apply to built-in recipes exactly
		// as they do to recipe files (config.Load does this itself).
		r.ApplyEnv(os.Getenv)
		return r, nil
	}
	return nil, fmt.Errorf("a recipe is required: -recipe FILE or -builtin NAME")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "djprocess:", err)
	os.Exit(1)
}
