// Command djworker is one worker of the multi-process runtime: it
// serves shard-stage requests from a djprocess coordinator over
// localhost HTTP. The coordinator spawns a fleet of these (djprocess
// -workers N), ships each the recipe and measured profiles at
// configure time, and routes shard-local plan stages to them; dedup
// indexes, barriers and export stay coordinator-side so the merged
// output is byte-identical to a single-process run. See
// docs/distributed.md.
//
// Usage:
//
//	djworker [-id N] [-listen 127.0.0.1:0] [-work-dir DIR] [-max-proto N]
//
// The worker prints "ready <addr>" on stdout once it is serving — with
// -listen 127.0.0.1:0 that line is how the coordinator learns the
// OS-assigned port. SIGTERM and SIGINT shut it down gracefully.
//
// The DJ_FAULT environment variable arms a fault for conformance
// testing: "crash", "hang" or "corrupt", optionally ":after=N" to
// trigger on the Nth stage request (see internal/remote/fault.go).
// Coordinators scrub DJ_FAULT from spawned workers' environments and
// forward per-worker DJ_FAULT_W<id> values instead, so a chaos test
// can aim a fault at exactly one fleet member.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "repro/internal/ops/all"
	"repro/internal/remote"
)

func main() {
	var (
		id       = flag.Int("id", 1, "1-based worker ID (journal lane)")
		listen   = flag.String("listen", "127.0.0.1:0", "address to serve on (port 0 = OS-assigned, reported on the ready line)")
		workDir  = flag.String("work-dir", "", "private work directory (default: a temp dir)")
		maxProto = flag.Int("max-proto", 0, "cap the negotiated wire version (0 = newest supported; 1 emulates a v1-only worker)")
	)
	flag.Parse()

	wd := *workDir
	if wd == "" {
		tmp, err := os.MkdirTemp("", "djworker-*")
		if err != nil {
			fatal(err)
		}
		wd = tmp
	} else if err := os.MkdirAll(wd, 0o755); err != nil {
		fatal(err)
	}

	srv := &remote.WorkerServer{ID: *id, WorkDir: wd, MaxProto: *maxProto}
	if spec := os.Getenv("DJ_FAULT"); spec != "" {
		f, err := remote.ParseFault(spec)
		if err != nil {
			fatal(err)
		}
		srv.Fault = f
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}

	// The ready line is the spawn protocol: the coordinator scrapes the
	// actual address (port 0 resolution) from it before dialing.
	fmt.Printf("ready %s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "djworker:", err)
	os.Exit(1)
}
